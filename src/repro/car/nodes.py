"""Application nodes of the car platform.

Each node owns one task of one partition and reacts to that task's job
completions (delivered by :class:`repro.car.platform.CarPlatform` through a
trace observer). Nodes talk *only* over the bus — except for the covert
pair: the :class:`PathPlanner` encodes the secret location into its
execution timing (via the channel script), and the :class:`DataLogger`
decodes it from its own response times, never touching the bus with it.
"""

from __future__ import annotations

from math import sin
from typing import List, Optional, Tuple

from repro.car.bus import Message, PubSubBus

#: Bus topics (the authorized channels).
STEERING_TOPIC = "/steering_cmd"
NAV_TOPIC = "/nav_cmd"
DRIVE_TOPIC = "/drive_cmd"
LOG_TOPIC = "/telemetry"


class Node:
    """Base class: one application node driven by its task's completions."""

    #: The simulator task this node reacts to.
    task_name = ""

    def __init__(self, bus: PubSubBus):
        self.bus = bus

    def on_job_complete(self, t: int) -> None:
        raise NotImplementedError


class VisionSteering(Node):
    """Vision-based steering (Π₂): publishes a steering command per frame."""

    task_name = "vision_steering_task"

    def __init__(self, bus: PubSubBus):
        super().__init__(bus)
        self.frames = 0

    def on_job_complete(self, t: int) -> None:
        self.frames += 1
        # A toy lane-keeping output; the value content is irrelevant to the
        # timing channel, it exists so the bus carries realistic traffic.
        angle = 0.1 * sin(self.frames / 7.0)
        self.bus.publish(STEERING_TOPIC, t, "vision_steering", {"angle": angle})


class PathPlanner(Node):
    """Path planning (Π₃) — the covert **sender**.

    Publishes waypoint navigation commands (authorized), while the precise
    location it processes stays local. The location trace is serialized to
    bits elsewhere (see :meth:`CarPlatform.secret_bits`); the planner's
    *task* then modulates its execution length per the channel script, which
    is what actually transmits.
    """

    task_name = "planner"

    def __init__(self, bus: PubSubBus, waypoints: Optional[List[Tuple[float, float]]] = None):
        super().__init__(bus)
        self.position = (0.0, 0.0)
        self.waypoints = waypoints or [(1.0, 0.0), (1.0, 1.0), (0.0, 1.0), (0.0, 0.0)]
        self._next = 0
        self.plans = 0

    def on_job_complete(self, t: int) -> None:
        self.plans += 1
        target = self.waypoints[self._next % len(self.waypoints)]
        # Advance the (secret) position toward the target.
        dx, dy = target[0] - self.position[0], target[1] - self.position[1]
        step = 0.05
        self.position = (self.position[0] + step * dx, self.position[1] + step * dy)
        if abs(dx) + abs(dy) < 0.1:
            self._next += 1
        # Only the *next waypoint* is authorized to leave the partition.
        self.bus.publish(NAV_TOPIC, t, "planner", {"waypoint": target})


class BehaviorController(Node):
    """Top-level behavior control (Π₁): fuses steering + navigation."""

    task_name = "behavior_control_task"

    def __init__(self, bus: PubSubBus):
        super().__init__(bus)
        self.last_steering: Optional[Message] = None
        self.last_nav: Optional[Message] = None
        bus.subscribe(STEERING_TOPIC, self._on_steering)
        bus.subscribe(NAV_TOPIC, self._on_nav)
        self.commands = 0

    def _on_steering(self, message: Message) -> None:
        self.last_steering = message

    def _on_nav(self, message: Message) -> None:
        self.last_nav = message

    def on_job_complete(self, t: int) -> None:
        self.commands += 1
        angle = self.last_steering.payload["angle"] if self.last_steering else 0.0
        waypoint = self.last_nav.payload["waypoint"] if self.last_nav else (0.0, 0.0)
        self.bus.publish(
            DRIVE_TOPIC, t, "behavior_control", {"angle": angle, "toward": waypoint}
        )


class DataLogger(Node):
    """Data logging (Π₄) — the covert **receiver**.

    Subscribes to everything authorized for post-debugging, and measures its
    own job response times: those measurements are the covert observations
    from which the secret location bits are decoded.
    """

    task_name = "logger"

    def __init__(self, bus: PubSubBus):
        super().__init__(bus)
        self.entries: List[Message] = []
        for topic in (STEERING_TOPIC, NAV_TOPIC, DRIVE_TOPIC):
            bus.subscribe(topic, self.entries.append)
        self.flushes = 0

    def on_job_complete(self, t: int) -> None:
        self.flushes += 1
        self.bus.publish(LOG_TOPIC, t, "logger", {"buffered": len(self.entries)})
