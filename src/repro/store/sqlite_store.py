"""The SQLite result store: one WAL-mode database, many writer processes.

The JSON-file backend scales with filesystem fan-out — fine for thousands
of entries, painful for millions (directory churn, one inode per cell, no
cheap iteration or aggregate queries). This backend keeps every entry as a
row in a single SQLite database::

    CREATE TABLE results (
        hash    TEXT PRIMARY KEY,
        value   TEXT NOT NULL,   -- canonical JSON
        meta    TEXT NOT NULL,   -- provenance JSON
        salt    TEXT NOT NULL,   -- code-version salt the value was computed under
        schema  INTEGER NOT NULL,
        created REAL NOT NULL    -- unix timestamp of the write
    )

Concurrency model: ``journal_mode=WAL`` lets readers proceed while one
writer commits, ``busy_timeout`` makes competing writers queue instead of
raising, and every put is a single ``INSERT OR REPLACE`` autocommit — so
any number of campaign clients (separate *processes*) can share one
database file. Entries are deterministic functions of their hash, so
last-writer-wins replacement is harmless.

Connections are lazy and per-process: the campaign pool forks workers, and
a SQLite connection must never cross a ``fork()``, so the handle rebinds
whenever ``os.getpid()`` changes.
"""

from __future__ import annotations

import json
import os
import sqlite3
import time
from pathlib import Path
from typing import Any, Dict, Iterator, Optional, Union

from repro.store.base import MISS, ResultStore, StoreEntry, note_corrupt_entry

#: How long a writer waits on a locked database before giving up (ms).
BUSY_TIMEOUT_MS = 30_000

_SCHEMA_SQL = """
CREATE TABLE IF NOT EXISTS results (
    hash    TEXT PRIMARY KEY,
    value   TEXT NOT NULL,
    meta    TEXT NOT NULL,
    salt    TEXT NOT NULL,
    schema  INTEGER NOT NULL,
    created REAL NOT NULL
)
"""


class SqliteStore(ResultStore):
    """A content-addressed result store in one WAL-mode SQLite database."""

    scheme = "sqlite"

    def __init__(
        self,
        path: Union[str, Path] = "results.db",
        salt: Optional[str] = None,
        busy_timeout_ms: int = BUSY_TIMEOUT_MS,
    ):
        super().__init__(salt=salt)
        self.path = Path(path)
        busy_timeout_ms = int(busy_timeout_ms)
        if busy_timeout_ms <= 0:
            raise ValueError(
                f"sqlite store busy_timeout_ms must be positive, got {busy_timeout_ms}"
            )
        self.busy_timeout_ms = busy_timeout_ms
        self._conn: Optional[sqlite3.Connection] = None
        self._conn_pid: Optional[int] = None

    def location(self) -> str:
        if self.busy_timeout_ms != BUSY_TIMEOUT_MS:
            return f"{self.path}?busy_timeout_ms={self.busy_timeout_ms}"
        return str(self.path)

    # -- connection management ---------------------------------------------

    def _connection(self) -> sqlite3.Connection:
        pid = os.getpid()
        if self._conn is not None and self._conn_pid != pid:
            # Inherited across fork: the handle must not be used (or even
            # cleanly closed) in the child. Drop it and rebind.
            self._conn = None
        if self._conn is None:
            if self.path.parent != Path("."):
                self.path.parent.mkdir(parents=True, exist_ok=True)
            conn = sqlite3.connect(str(self.path), check_same_thread=False)
            conn.execute(f"PRAGMA busy_timeout = {self.busy_timeout_ms}")
            conn.execute("PRAGMA journal_mode = WAL")
            conn.execute("PRAGMA synchronous = NORMAL")
            conn.execute(_SCHEMA_SQL)
            conn.commit()
            self._conn = conn
            self._conn_pid = pid
        return self._conn

    def close(self) -> None:
        if self._conn is not None and self._conn_pid == os.getpid():
            self._conn.close()
        self._conn = None
        self._conn_pid = None

    # -- backend primitives ------------------------------------------------

    @staticmethod
    def _decode_row(row, location: str) -> Any:
        """Row -> entry dict, or :data:`MISS` for undecodable payloads."""
        value_text, meta_text, salt, schema = row
        try:
            value = json.loads(value_text)
            meta = json.loads(meta_text)
        except (TypeError, ValueError):
            note_corrupt_entry(location)
            return MISS
        if not isinstance(meta, dict):
            note_corrupt_entry(location)
            return MISS
        return {"value": value, "meta": meta, "salt": salt, "schema": schema}

    def _load(self, content_hash: str) -> Any:
        conn = self._connection()
        row = conn.execute(
            "SELECT value, meta, salt, schema FROM results WHERE hash = ?",
            (content_hash,),
        ).fetchone()
        if row is None:
            return MISS
        return self._decode_row(row, f"{self.path}:{content_hash}")

    def _write(self, content_hash: str, entry: Dict[str, Any]) -> None:
        conn = self._connection()
        conn.execute(
            "INSERT OR REPLACE INTO results (hash, value, meta, salt, schema, created) "
            "VALUES (?, ?, ?, ?, ?, ?)",
            (
                content_hash,
                json.dumps(entry["value"]),
                json.dumps(entry["meta"]),
                entry["salt"],
                entry["schema"],
                time.time(),
            ),
        )
        conn.commit()

    def _delete(self, content_hash: str) -> bool:
        conn = self._connection()
        cursor = conn.execute("DELETE FROM results WHERE hash = ?", (content_hash,))
        conn.commit()
        return cursor.rowcount > 0

    def _hashes(self) -> Iterator[str]:
        conn = self._connection()
        for (content_hash,) in conn.execute(
            "SELECT hash FROM results ORDER BY hash"
        ):
            yield content_hash

    def entries(self) -> Iterator[StoreEntry]:
        conn = self._connection()
        for content_hash, value_text, meta_text, salt, schema in conn.execute(
            "SELECT hash, value, meta, salt, schema FROM results ORDER BY hash"
        ):
            entry = self._decode_row(
                (value_text, meta_text, salt, schema), f"{self.path}:{content_hash}"
            )
            if entry is MISS:
                continue
            yield StoreEntry(
                content_hash=content_hash,
                value=entry["value"],
                meta=dict(entry["meta"]),
                salt=str(entry["salt"]),
                schema=int(entry["schema"]),
            )

    def __len__(self) -> int:
        row = self._connection().execute("SELECT COUNT(*) FROM results").fetchone()
        return int(row[0])
