"""The JSON-file result store — the original ``.repro_cache/`` layout.

Each entry is one JSON file addressed by content hash with a two-char
directory fan-out to keep directories small::

    .repro_cache/
        ab/abcdef....json

Writes are atomic (temp file + ``os.replace``) so concurrent writer
processes can share a root: the worst case is two processes computing the
same deterministic cell and one ``os.replace`` winning. Corrupt or
unreadable entries are treated as misses (and eventually overwritten),
never raised — but they are *counted*: see
:func:`repro.store.base.note_corrupt_entry`.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Iterator, Optional, Union

from repro.store.base import (
    DEFAULT_CACHE_DIR,
    MISS,
    ResultStore,
    StoreEntry,
    note_corrupt_entry,
)


class JsonStore(ResultStore):
    """A content-addressed one-file-per-entry JSON store.

    This class is also importable as ``repro.runner.ResultCache``, its
    pre-:mod:`repro.store` name.
    """

    scheme = "json"

    #: Historical fan-out width; also what omitted ``?fanout=`` means.
    DEFAULT_FANOUT = 2

    def __init__(
        self,
        root: Union[str, Path] = DEFAULT_CACHE_DIR,
        salt: Optional[str] = None,
        fanout: int = DEFAULT_FANOUT,
    ):
        super().__init__(salt=salt)
        self.root = Path(root)
        fanout = int(fanout)
        if not 1 <= fanout <= 8:
            # Wider than 8 hex chars of fan-out means more directories than
            # entries for any realistic campaign; narrower than 1 is no
            # fan-out at all, which this layout does not support.
            raise ValueError(f"json store fanout must be in 1..8, got {fanout}")
        self.fanout = fanout

    def location(self) -> str:
        if self.fanout != self.DEFAULT_FANOUT:
            return f"{self.root}?fanout={self.fanout}"
        return str(self.root)

    def path_for(self, content_hash: str) -> Path:
        return self.root / content_hash[: self.fanout] / f"{content_hash}.json"

    # -- backend primitives ------------------------------------------------

    def _load(self, content_hash: str) -> Any:
        path = self.path_for(content_hash)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                entry = json.load(handle)
        except FileNotFoundError:
            return MISS
        except (OSError, ValueError):
            # Present on disk but unreadable/undecodable: a *corrupt* miss,
            # distinct from plain absence — count it so truncated caches
            # don't masquerade as cold ones.
            note_corrupt_entry(str(path))
            return MISS
        if not isinstance(entry, dict) or "value" not in entry:
            note_corrupt_entry(str(path))
            return MISS
        return entry

    def _write(self, content_hash: str, entry: Dict[str, Any]) -> None:
        path = self.path_for(content_hash)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            prefix=path.stem, suffix=".tmp", dir=str(path.parent)
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(entry, handle)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def _delete(self, content_hash: str) -> bool:
        try:
            os.unlink(self.path_for(content_hash))
        except OSError:
            return False
        return True

    def _hashes(self) -> Iterator[str]:
        if not self.root.is_dir():
            return
        for path in sorted(self.root.glob("?" * self.fanout + "/*.json")):
            yield path.stem

    def entries(self) -> Iterator[StoreEntry]:
        for content_hash in self._hashes():
            entry = self._load(content_hash)
            if entry is MISS:
                continue
            yield StoreEntry(
                content_hash=content_hash,
                value=entry["value"],
                meta=dict(entry.get("meta") or {}),
                salt=str(entry.get("salt", "")),
                schema=int(entry.get("schema", 0)),
            )

    # -- back-compat -------------------------------------------------------

    def put(
        self, content_hash: str, value: Any, meta: Optional[Dict[str, Any]] = None
    ) -> Path:
        """:meth:`ResultStore.put`, returning the entry's path (historical
        ``ResultCache.put`` contract)."""
        super().put(content_hash, value, meta=meta)
        return self.path_for(content_hash)
