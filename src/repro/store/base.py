"""The :class:`ResultStore` backend protocol.

A result store is a content-addressed mapping ``content_hash -> entry``
where an entry is a JSON-serializable value plus provenance metadata (the
campaign and cell that produced it, wall time, the code-version salt it was
computed under, and the cache schema). The campaign runner treats the store
as the single source of truth for completed cells: a hash that resolves is
never recomputed, which is what makes campaigns cacheable, resumable after
a crash, and shareable between clients.

Two backends ship with the repo:

- :class:`repro.store.json_store.JsonStore` — one JSON file per entry with
  a two-char directory fan-out (the original ``.repro_cache/`` layout);
- :class:`repro.store.sqlite_store.SqliteStore` — a single WAL-mode SQLite
  database, safe for many concurrent writer *processes*.

Both are addressed by store URL (``json:.repro_cache``,
``sqlite:results.db``; a bare path means JSON, preserving the historical
default) via :func:`repro.store.open_store`, and :func:`repro.store.migrate`
round-trips entries between any two backends with provenance preserved.

Store latencies are observable: while the :mod:`repro.obs` gate is on,
``store.get_ns`` / ``store.put_ns`` histograms in :data:`STORE_METRICS`
record every access, and the gated ``cache.corrupt`` counter counts entries
that were present on disk but undecodable (each corrupt path additionally
triggers a one-time :class:`RuntimeWarning`, mirroring
:func:`repro.faults.resolve_fault_plan`'s precedence warning).
"""

from __future__ import annotations

import os
import time
import warnings
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, Optional

from repro.obs.events import EVENTS
from repro.obs.events import emit as emit_event
from repro.obs.gate import GATE
from repro.obs.registry import MetricsRegistry, register_process_registry

#: Sentinel distinguishing "miss" from a stored ``None``.
MISS = object()


def cache_schema() -> int:
    """The current :data:`repro.runner.spec.CACHE_SCHEMA` (lazy import:
    ``repro.runner.cache`` re-exports this package, so a top-level import
    here would be circular through ``repro.runner``'s package init)."""
    from repro.runner.spec import CACHE_SCHEMA

    return CACHE_SCHEMA

#: Default JSON store root, relative to the current working directory.
DEFAULT_CACHE_DIR = ".repro_cache"

#: Process-wide store instrumentation: ``store.get_ns`` / ``store.put_ns``
#: latency histograms and the ``cache.corrupt`` counter. Gated like every
#: other registry — with :mod:`repro.obs` disabled nothing here mutates.
STORE_METRICS = register_process_registry(MetricsRegistry("store"))


def code_salt() -> str:
    """The default code-version salt folded into every cache key.

    Combines the package version with the ``REPRO_CACHE_SALT`` environment
    variable (useful to force invalidation without touching the tree).
    """
    from repro import __version__  # lazy: avoid import cycles at package init

    extra = os.environ.get("REPRO_CACHE_SALT", "")
    return f"repro-{__version__}" + (f"+{extra}" if extra else "")


@dataclass
class CacheStats:
    """Access counters of one store handle (not of the backing data)."""

    hits: int = 0
    misses: int = 0
    writes: int = 0


@dataclass(frozen=True)
class StoreEntry:
    """One stored result with its full provenance, as :meth:`ResultStore.entries`
    yields it and :func:`repro.store.migrate` copies it."""

    content_hash: str
    value: Any
    meta: Dict[str, Any] = field(default_factory=dict)
    salt: str = ""
    schema: int = field(default_factory=cache_schema)

    def to_wire(self) -> Dict[str, Any]:
        """A JSON-safe document for shipping this entry over a socket.

        The cluster result path (:mod:`repro.cluster`) sends these inside
        result frames; :meth:`from_wire` round-trips them exactly, so a
        remote worker's entry lands in the coordinator's store bit-for-bit
        identical to a locally computed one.
        """
        return {
            "content_hash": self.content_hash,
            "value": self.value,
            "meta": dict(self.meta),
            "salt": self.salt,
            "schema": self.schema,
        }

    @classmethod
    def from_wire(cls, doc: Dict[str, Any]) -> "StoreEntry":
        """Rebuild an entry from :meth:`to_wire` output (defensively typed:
        a malformed peer document raises ``ValueError``, never ``KeyError``)."""
        if not isinstance(doc, dict) or "content_hash" not in doc:
            raise ValueError(f"not a wire store entry: {doc!r}")
        return cls(
            content_hash=str(doc["content_hash"]),
            value=doc.get("value"),
            meta=dict(doc.get("meta") or {}),
            salt=str(doc.get("salt", "")),
            schema=int(doc.get("schema", 0)),
        )


# One-time marker for the corrupt-entry warning below: the pid that has
# already warned, or None. Per process, not per store: a corrupted cache
# directory typically has many bad files and one notice naming the first is
# enough — but storing the *pid* (not a bare bool) means a forked pool
# worker, which inherits this module state already spent, re-arms on first
# use and still warns once in its own process.
_CORRUPT_WARNED_PID: Optional[int] = None


def reset_corrupt_warning() -> None:
    """Re-arm the one-time corrupt-entry warning (test isolation)."""
    global _CORRUPT_WARNED_PID
    _CORRUPT_WARNED_PID = None


def note_corrupt_entry(location: str) -> None:
    """Record one undecodable store entry.

    Ticks the gated ``cache.corrupt`` counter in :data:`STORE_METRICS` and,
    once per process, emits a :class:`RuntimeWarning` naming the offending
    path — a corrupt entry is silently treated as a miss (and later
    overwritten) so without this signal a half-truncated cache looks like a
    slow one.
    """
    global _CORRUPT_WARNED_PID
    STORE_METRICS.counter("cache.corrupt").inc()
    if EVENTS.active:
        emit_event("store.corrupt", location=location)
    if _CORRUPT_WARNED_PID != os.getpid():
        _CORRUPT_WARNED_PID = os.getpid()
        warnings.warn(
            f"corrupt result-store entry at {location}: treated as a miss and "
            "eligible for overwrite (further corrupt entries are only counted; "
            "see the 'cache.corrupt' obs counter)",
            RuntimeWarning,
            stacklevel=4,
        )


class ResultStore(ABC):
    """Abstract content-addressed result store.

    Subclasses implement the raw ``_load`` / ``_write`` / ``_delete`` /
    :meth:`entries` primitives; this base class owns the miss sentinel
    semantics, the hit/miss/write stats, the gated latency metrics, and
    provenance-preserving copies (:meth:`put_entry`).
    """

    #: ``"json"`` / ``"sqlite"`` — the URL scheme naming this backend.
    scheme: str = ""

    def __init__(self, salt: Optional[str] = None):
        self.salt = code_salt() if salt is None else salt
        self.stats = CacheStats()

    # -- backend primitives ------------------------------------------------

    @abstractmethod
    def _load(self, content_hash: str) -> Any:
        """Return the stored *entry dict* for ``content_hash`` or :data:`MISS`.

        Corrupt or schema-less entries are misses (after calling
        :func:`note_corrupt_entry`); this never raises for bad data.
        """

    @abstractmethod
    def _write(self, content_hash: str, entry: Dict[str, Any]) -> None:
        """Durably persist ``entry`` (atomic per entry; last writer wins)."""

    @abstractmethod
    def _delete(self, content_hash: str) -> bool:
        """Remove one entry; True when something was actually removed."""

    @abstractmethod
    def entries(self) -> Iterator[StoreEntry]:
        """Iterate every decodable entry, in ascending hash order."""

    @abstractmethod
    def _hashes(self) -> Iterator[str]:
        """Iterate every *stored* hash, in ascending order — including
        hashes whose entries are torn/corrupt and which :meth:`entries`
        therefore skips. :meth:`gc` sweeps this, not :meth:`entries`, so
        corrupt entries are reachable for removal."""

    @abstractmethod
    def location(self) -> str:
        """The backend's path operand (what follows ``scheme:`` in its URL)."""

    # -- derived public API ------------------------------------------------

    @property
    def url(self) -> str:
        return f"{self.scheme}:{self.location()}"

    def get(self, content_hash: str) -> Any:
        """Return the cached value for ``content_hash``, or :data:`MISS`."""
        if GATE.enabled:
            started = time.perf_counter_ns()
            entry = self._load(content_hash)
            STORE_METRICS.histogram("store.get_ns").observe(
                time.perf_counter_ns() - started
            )
        else:
            entry = self._load(content_hash)
        if entry is MISS:
            self.stats.misses += 1
            if EVENTS.active:
                emit_event("store.miss", hash=content_hash[:12])
            return MISS
        self.stats.hits += 1
        if EVENTS.active:
            emit_event("store.hit", hash=content_hash[:12])
        return entry["value"]

    def put(
        self, content_hash: str, value: Any, meta: Optional[Dict[str, Any]] = None
    ) -> None:
        """Atomically persist ``value`` (must be JSON-serializable) under
        this store's salt and the current cache schema."""
        entry = {
            "value": value,
            "meta": dict(meta or {}),
            "salt": self.salt,
            "schema": cache_schema(),
        }
        if GATE.enabled:
            started = time.perf_counter_ns()
            self._write(content_hash, entry)
            STORE_METRICS.histogram("store.put_ns").observe(
                time.perf_counter_ns() - started
            )
        else:
            self._write(content_hash, entry)
        self.stats.writes += 1
        if EVENTS.active:
            emit_event("store.put", hash=content_hash[:12])

    def put_entry(self, entry: StoreEntry) -> None:
        """Persist a fully specified entry, preserving its original salt and
        schema — the :func:`repro.store.migrate` path."""
        self._write(
            entry.content_hash,
            {
                "value": entry.value,
                "meta": dict(entry.meta),
                "salt": entry.salt,
                "schema": entry.schema,
            },
        )
        self.stats.writes += 1

    def get_entry(self, content_hash: str) -> Optional[StoreEntry]:
        """The full entry (with provenance) for ``content_hash``, or None.
        Does not touch the hit/miss counters."""
        entry = self._load(content_hash)
        if entry is MISS:
            return None
        return StoreEntry(
            content_hash=content_hash,
            value=entry["value"],
            meta=dict(entry.get("meta") or {}),
            salt=str(entry.get("salt", "")),
            schema=int(entry.get("schema", 0)),
        )

    def __contains__(self, content_hash: str) -> bool:
        """Membership agrees with :meth:`get`: True only for entries that
        ``get`` would actually return (a corrupt or schema-less entry is a
        miss for both). Does not count toward hit/miss stats."""
        return self._load(content_hash) is not MISS

    def __len__(self) -> int:
        return sum(1 for _ in self.entries())

    def gc(self, keep_salt: Optional[str] = None) -> int:
        """Delete entries whose salt differs from ``keep_salt`` (default:
        this store's salt) — results computed by other code versions that
        can never be replayed again. Returns the number removed.

        Torn/corrupt entries are swept too: they can never be read back
        under *any* salt, so each one is counted (the gated
        ``cache.corrupt`` counter, via the backend's ``_load``) and then
        removed. Bad data never raises mid-sweep — ``_load`` decodes
        defensively and ``_delete`` tolerates races with concurrent
        writers.
        """
        keep = self.salt if keep_salt is None else keep_salt
        removed = 0
        for content_hash in list(self._hashes()):
            entry = self._load(content_hash)
            if entry is MISS:
                # Listed by the backend but undecodable (or deleted by a
                # concurrent sweep since listing): remove what's left.
                if self._delete(content_hash):
                    removed += 1
                continue
            if str(entry.get("salt", "")) != keep and self._delete(content_hash):
                removed += 1
        if EVENTS.active:
            emit_event("store.gc", removed=removed, url=self.url)
        return removed

    def close(self) -> None:
        """Release backend resources (connections); idempotent."""

    def describe(self) -> Dict[str, Any]:
        """A JSON-friendly summary: URL, entry count, per-salt breakdown."""
        by_salt: Dict[str, int] = {}
        total = 0
        for entry in self.entries():
            total += 1
            by_salt[entry.salt] = by_salt.get(entry.salt, 0) + 1
        return {
            "url": self.url,
            "entries": total,
            "salts": dict(sorted(by_salt.items())),
            "current_salt": self.salt,
        }
