"""``repro.store`` — pluggable content-addressed result stores.

The campaign runner's result cache, generalized into a backend protocol
(:class:`ResultStore`) with two implementations:

- :class:`JsonStore` — one JSON file per entry under a fan-out directory
  (the historical ``.repro_cache/`` layout, still the default);
- :class:`SqliteStore` — a single WAL-mode SQLite database, safe for many
  concurrent writer processes and cheap to iterate/aggregate at scale.

Stores are addressed by **URL** anywhere a cache argument is accepted
(``run_campaign(cache=...)``, the CLI's ``--store``)::

    json:.repro_cache      # JSON backend rooted at .repro_cache/
    sqlite:results.db      # SQLite backend in results.db
    .repro_cache           # bare path: JSON (the historical default)

:func:`migrate` copies every entry between any two stores with provenance
(meta, salt, schema) preserved, so a filesystem cache can be consolidated
into SQLite — or extracted back — without recomputing a single cell::

    from repro.store import migrate, open_store

    n = migrate(open_store("json:.repro_cache"), open_store("sqlite:results.db"))

See ``docs/SERVICE.md`` for the full tour.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.store.base import (
    DEFAULT_CACHE_DIR,
    MISS,
    STORE_METRICS,
    CacheStats,
    ResultStore,
    StoreEntry,
    cache_schema,
    code_salt,
    note_corrupt_entry,
    reset_corrupt_warning,
)
from repro.store.json_store import JsonStore
from repro.store.sqlite_store import SqliteStore

__all__ = [
    "DEFAULT_CACHE_DIR",
    "DEFAULT_STORE_URL",
    "MISS",
    "STORE_METRICS",
    "CacheStats",
    "JsonStore",
    "ResultStore",
    "SqliteStore",
    "StoreEntry",
    "cache_schema",
    "code_salt",
    "migrate",
    "note_corrupt_entry",
    "open_store",
    "reset_corrupt_warning",
    "store_url",
]

#: The default store when none is named: the JSON backend in its historical
#: location.
DEFAULT_STORE_URL = f"json:{DEFAULT_CACHE_DIR}"

#: scheme -> backend class. New backends register here (and only here: URL
#: parsing, the CLI, and docs all render from this table).
BACKENDS = {
    JsonStore.scheme: JsonStore,
    SqliteStore.scheme: SqliteStore,
}

#: Schemes resolved on first use (import cost or optional deps). The
#: ``remote:`` proxy lives in :mod:`repro.cluster`, which must not load for
#: every plain file-backed campaign.
_LAZY_BACKENDS = {
    "remote": ("repro.cluster.remote_store", "RemoteStore"),
}


def _int_in_range(low: int, high: Optional[int] = None):
    def convert(key: str, text: str) -> int:
        try:
            value = int(text)
        except ValueError:
            raise ValueError(
                f"store URL parameter {key}={text!r} is not an integer"
            ) from None
        if value < low or (high is not None and value > high):
            bounds = f">= {low}" if high is None else f"in {low}..{high}"
            raise ValueError(f"store URL parameter {key}={value} must be {bounds}")
        return value

    return convert


#: scheme -> {query key -> value converter}. ``open_store`` rejects any key
#: not listed here, so a typo (``?fanout=4`` on a sqlite URL, ``?fnaout=``
#: anywhere) fails loudly instead of being silently dropped.
_QUERY_PARAMS = {
    "json": {"fanout": _int_in_range(1, 8)},
    "sqlite": {"busy_timeout_ms": _int_in_range(1)},
    "remote": {},
}


def _parse_query(scheme: str, query: str) -> dict:
    allowed = _QUERY_PARAMS.get(scheme, {})
    params = {}
    for part in query.split("&"):
        if not part:
            continue
        key, _, text = part.partition("=")
        if key not in allowed:
            known = ", ".join(sorted(allowed)) or "none"
            raise ValueError(
                f"unknown store URL parameter {key!r} for scheme "
                f"{scheme!r} (known: {known})"
            )
        params[key] = allowed[key](key, text)
    return params


def store_url(spec: Union[str, ResultStore]) -> str:
    """Normalize ``spec`` to a ``scheme:path[?params]`` store URL.

    Bare paths (no known scheme prefix) mean the JSON backend, preserving
    the pre-URL behavior of every ``cache=`` argument. Query parameters
    (``sqlite:results.db?busy_timeout_ms=5000``, ``json:cache?fanout=3``)
    pass through; they are validated by :func:`open_store`.
    """
    if isinstance(spec, ResultStore):
        return spec.url
    text = str(spec)
    scheme, sep, rest = text.partition(":")
    if sep and (scheme in BACKENDS or scheme in _LAZY_BACKENDS):
        return f"{scheme}:{rest}" if rest else f"{scheme}:{_default_path(scheme)}"
    return f"json:{text or DEFAULT_CACHE_DIR}"


def _default_path(scheme: str) -> str:
    return DEFAULT_CACHE_DIR if scheme == "json" else "results.db"


def _backend_class(scheme: str):
    if scheme in BACKENDS:
        return BACKENDS[scheme]
    module_name, attr = _LAZY_BACKENDS[scheme]
    import importlib

    return getattr(importlib.import_module(module_name), attr)


def open_store(
    spec: Union[None, str, "object", ResultStore], salt: Optional[str] = None
) -> Optional[ResultStore]:
    """Coerce a user-facing cache/store argument into a :class:`ResultStore`.

    ``None`` disables storage; an existing store passes through untouched
    (``salt`` must then be None — reopening with a different salt would
    silently change its keying); a string/path is parsed as a store URL,
    including backend tuning via query parameters::

        json:.repro_cache?fanout=3
        sqlite:results.db?busy_timeout_ms=5000
        remote:head-node:7341              # cluster coordinator proxy

    Unknown parameters (and out-of-range values) raise ``ValueError``.
    ``os.PathLike`` values are treated as bare JSON roots.
    """
    if spec is None:
        return None
    if isinstance(spec, ResultStore):
        if salt is not None and salt != spec.salt:
            raise ValueError(
                "open_store(salt=...) cannot re-salt an existing store; "
                "construct the backend with the salt instead"
            )
        return spec
    url = store_url(str(spec))
    scheme, _, rest = url.partition(":")
    # The operand may itself contain ':' (remote:HOST:PORT) — only a
    # trailing '?query' is split off, the rest is the operand.
    path, _, query = rest.partition("?")
    params = _parse_query(scheme, query)
    path = path or _default_path(scheme)
    return _backend_class(scheme)(path, salt=salt, **params)


def migrate(src: ResultStore, dst: ResultStore) -> int:
    """Copy every entry of ``src`` into ``dst``, preserving provenance.

    Values, metadata, and the original code-version salt/schema cross
    unchanged (a migrated entry hits the cache exactly when the original
    would have). Existing entries in ``dst`` under the same hash are
    overwritten — both sides are deterministic functions of the hash, so
    this is a no-op disagreement-wise. Returns the number of entries copied.
    """
    copied = 0
    for entry in src.entries():
        dst.put_entry(entry)
        copied += 1
    return copied
