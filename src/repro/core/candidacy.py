"""Candidate search: Algorithms 1 and 2 with the Fig. 9 optimization.

At decision time ``t``, let :math:`\\mathcal{L}_t = (\\Pi_{(1)}, \\dots,
\\Pi_{(n)})` be the *active, ready* partitions in decreasing priority order,
followed by the imaginary IDLE partition. The candidate list is built by
walking that sequence:

- :math:`\\Pi_{(1)}` is always a candidate — running the highest-priority
  active partition is no inversion at all.
- :math:`\\Pi_{(i)}` is a candidate iff every partition with priority above it
  — **including inactive ones**, which are exposed to the indirect
  interference of Fig. 8, and including inactive partitions ranked above
  :math:`\\Pi_{(1)}` itself — passes the schedulability test of Algorithm 3
  for an inversion of the quantum size ``w``.
- The walk stops at the first failure: if some :math:`\\Pi_h` above
  :math:`\\Pi_{(i)}` cannot absorb the inversion, it cannot absorb the same
  inversion caused by :math:`\\Pi_{(i+1)}` either (the analysis depends only
  on ``w``, not on who causes it).
- IDLE is appended last and tested the same way: idling for ``w`` is an
  inversion against *every* partition.

Fig. 9's complexity argument is implemented as an incremental sweep over the
full priority order, starting at the very top: each partition in the system
is schedulability-tested at most once per decision because partitions
already vetted for :math:`\\Pi_{(i-1)}` are skipped when testing
:math:`\\Pi_{(i)}` — hence :math:`\\mathcal{O}(|\\Pi|)` tests per decision.
The only partition that is never tested *on its own account* is
:math:`\\Pi_{(1)}`: running it is no inversion. It is still swept like
everybody else when a lower candidate or IDLE is vetted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple, Union

from repro.core.busy_interval import schedulability_test
from repro.core.state import IDLE, PartitionState, SystemState

Candidate = Union[PartitionState, type(IDLE)]

#: Signature of a schedulability tester: ``(h, higher, t, w) -> bool``.
Tester = Callable[[PartitionState, Sequence[PartitionState], int, int], bool]


@dataclass
class SearchStats:
    """Bookkeeping for the overhead study (Fig. 17 / Table IV)."""

    schedulability_tests: int = 0
    candidates_found: int = 0
    idle_allowed: bool = False


def candidate_search(
    state: SystemState,
    w: int,
    allow_idle: bool = True,
    tester: Optional[Tester] = None,
) -> Tuple[List[Candidate], SearchStats]:
    """Step 1 of Algorithm 1: the list of partitions allowed to take the CPU.

    Args:
        state: Full system snapshot at the decision time (all partitions).
        w: The inversion quantum ``MIN_INV_SIZE`` (µs).
        allow_idle: When True, the imaginary IDLE partition is tested and, if
            schedulability-preserving, appended to the candidate list.
        tester: Schedulability test to use; defaults to
            :func:`~repro.core.busy_interval.schedulability_test`. Pass a
            :class:`~repro.core.memo.SchedulabilityMemo` to reuse test
            outcomes across decisions (``stats.schedulability_tests`` keeps
            counting *logical* tests either way).

    Returns:
        ``(candidates, stats)``. ``candidates`` preserves decreasing priority
        order, with :data:`~repro.core.state.IDLE` last when allowed. The
        list is empty only when there is no active ready partition at all
        (the caller should then idle until the next event).
    """
    t = state.t
    test = schedulability_test if tester is None else tester
    stats = SearchStats()
    active = state.active_ready()
    if not active:
        if allow_idle:
            stats.idle_allowed = True
            return [IDLE], stats
        return [], stats

    all_parts = state.partitions  # already sorted by decreasing priority
    # Pi_(1) is admitted without any vetting: running the highest-priority
    # active partition is no inversion, so nobody needs to absorb anything
    # on its account.
    candidates: List[Candidate] = [active[0]]

    # Index into all_parts of the first partition NOT yet schedulability-
    # tested. The sweep starts at the very top of the priority order:
    # inactive partitions ranked above Pi_(1) are exposed to the indirect
    # interference of Fig. 8 exactly like everybody else, so they must be
    # vetted before any *inverted* candidate (or IDLE) is admitted. The
    # Fig. 9 optimization is only that we never re-test a partition.
    next_untested = 0
    rank_of = {p.name: i for i, p in enumerate(all_parts)}

    # A memoizing tester can open the whole decision at once (amortizing its
    # key construction over the prefix-structured call sequence); any plain
    # callable is used test-by-test.
    prepare = getattr(test, "prepare", None)
    vet = prepare(all_parts, t, w) if prepare is not None else None

    def vet_up_to(limit: int) -> bool:
        """Test every not-yet-tested partition with rank < limit."""
        nonlocal next_untested
        while next_untested < limit:
            stats.schedulability_tests += 1
            ok = (
                vet(next_untested)
                if vet is not None
                else test(all_parts[next_untested], all_parts[:next_untested], t, w)
            )
            if not ok:
                return False
            next_untested += 1
        return True

    feasible = True
    for candidate in active[1:]:
        # hp(Pi_(i)) - hp(Pi_(i-1)): all partitions, active or inactive,
        # ranked above this candidate and not yet vetted.
        if not vet_up_to(rank_of[candidate.name]):
            feasible = False
            break
        candidates.append(candidate)

    if feasible and allow_idle:
        # IDLE sits below everything: idling is an inversion against every
        # partition, so the remaining unvetted ones must pass too.
        if vet_up_to(len(all_parts)):
            stats.idle_allowed = True
            candidates.append(IDLE)

    stats.candidates_found = len(candidates)
    return candidates, stats
