"""Runtime partition state consumed by the TimeDice decision logic.

The algorithm needs, for each partition at decision time ``t`` (Sec. IV-A):

- the static parameters :math:`T_i`, :math:`B_i`, and the global priority;
- the remaining budget :math:`B_i(t)`;
- the last replenishment time :math:`r_{i,t}` (from which the next
  replenishment offset :math:`o_{i,t} = r_{i,t} + T_i - t` and the deadline
  :math:`d_{i,t} = r_{i,t} + T_i` follow);
- whether the partition currently has ready work (only such partitions are
  worth executing, though *all* are protected by the schedulability test).

Keeping this as a plain immutable snapshot decouples :mod:`repro.core` from
the simulator: the engine produces a :class:`SystemState` at every scheduling
point, and the Table IV latency benchmarks synthesize them directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple


class _IdleSentinel:
    """Singleton standing for the imaginary IDLE partition of Algorithm 1."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "IDLE"


#: The imaginary idle "partition": selecting it leaves the CPU idle.
IDLE = _IdleSentinel()


@dataclass(frozen=True)
class PartitionState:
    """Snapshot of one partition's scheduling-relevant state at time ``t``.

    Attributes:
        name: Partition identifier.
        period: Replenishment period :math:`T_i` (µs).
        max_budget: Full budget :math:`B_i` (µs).
        priority: Global priority (smaller = higher).
        remaining_budget: :math:`B_i(t)` (µs), in ``[0, max_budget]``.
        last_replenishment: :math:`r_{i,t}` (µs) — the most recent time at or
            before ``t`` when the budget was set to :math:`B_i`.
        ready: True when the partition has at least one pending job, i.e. it
            would actually use the CPU if selected.
    """

    name: str
    period: int
    max_budget: int
    priority: int
    remaining_budget: int
    last_replenishment: int
    ready: bool = True

    def __post_init__(self) -> None:
        if not 0 <= self.remaining_budget <= self.max_budget:
            raise ValueError(
                f"{self.name}: remaining budget {self.remaining_budget} outside "
                f"[0, {self.max_budget}]"
            )

    @property
    def active(self) -> bool:
        """A partition is *active* iff its remaining budget is non-zero (Sec. II-b)."""
        return self.remaining_budget > 0

    def deadline(self) -> int:
        """Current-period deadline :math:`d_{i,t} = r_{i,t} + T_i` (absolute µs)."""
        return self.last_replenishment + self.period

    def next_replenishment_offset(self, t: int) -> int:
        """Offset :math:`o_{i,t} = r_{i,t} + T_i - t` of the next replenishment.

        Non-negative whenever the snapshot is consistent (``t`` lies within
        the current period).
        """
        return self.last_replenishment + self.period - t

    def remaining_utilization(self, t: int) -> float:
        """TimeDiceW's lottery weight basis :math:`u_{i,t} = B_i(t)/(d_{i,t}-t)`.

        A partition exactly at its deadline with leftover budget is maximally
        urgent; we saturate at 1.0 (the CPU cannot supply more than one unit
        of time per unit of time).
        """
        horizon = self.deadline() - t
        if horizon <= 0:
            return 1.0 if self.remaining_budget > 0 else 0.0
        return min(1.0, self.remaining_budget / horizon)


@dataclass(frozen=True)
class SystemState:
    """Snapshot of every partition at decision time ``t``.

    ``partitions`` is ordered from highest to lowest global priority — the
    order the candidate search walks. The snapshot always contains *all*
    partitions (active or not): inactive higher-priority partitions are
    exactly the ones subject to indirect interference (Fig. 8).
    """

    t: int
    partitions: Tuple[PartitionState, ...]

    def __init__(self, t: int, partitions: Sequence[PartitionState]):
        ordered = tuple(sorted(partitions, key=lambda p: p.priority))
        object.__setattr__(self, "t", t)
        object.__setattr__(self, "partitions", ordered)
        priorities = [p.priority for p in ordered]
        if len(set(priorities)) != len(priorities):
            raise ValueError(f"duplicate partition priorities in snapshot: {priorities}")
        for p in ordered:
            if p.last_replenishment > t:
                raise ValueError(
                    f"{p.name}: last replenishment {p.last_replenishment} lies in "
                    f"the future of snapshot time {t}"
                )

    def __iter__(self):
        return iter(self.partitions)

    def __len__(self) -> int:
        return len(self.partitions)

    def by_name(self, name: str) -> PartitionState:
        for p in self.partitions:
            if p.name == name:
                return p
        raise KeyError(name)

    def active_ready(self) -> List[PartitionState]:
        """:math:`\\mathcal{L}_t`: partitions that could execute now.

        Active (non-zero budget) and with ready work, highest priority first.
        """
        return [p for p in self.partitions if p.active and p.ready]

    def higher_priority(self, priority: int) -> List[PartitionState]:
        """All partitions with priority strictly higher than ``priority``."""
        return [p for p in self.partitions if p.priority < priority]

    def with_time(self, t: int) -> "SystemState":
        """Copy of the snapshot re-stamped at a later time (testing helper)."""
        return SystemState(t, self.partitions)
