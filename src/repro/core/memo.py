"""Memoized schedulability testing: reuse across quanta (the hot path).

TimeDice's entire runtime cost is Algorithm 1 re-running the busy-interval
fixed point (Eqs. 1-3) at every 1 ms quantum — the overhead the paper
measures in Fig. 17 / Table IV. Within a hyperperiod, however, the inputs of
those fixed points recur *exactly*: budgets are replenished on a strict
periodic lattice, so the same (remaining budgets, replenishment phases)
tuples come back again and again. This module caches the boolean outcome of
:func:`~repro.core.busy_interval.schedulability_test` keyed on the
**phase-relative** part of its inputs, with a bounded LRU and hit/miss/
eviction counters.

Why the cache is exact (not approximate)
----------------------------------------

Absolute time ``t`` cancels out of Eq. 1. The test reads ``t`` only through

- each interferer's next replenishment offset
  :math:`o_{j,t} = r_{j,t} + T_j - t`, and
- the deadline slack :math:`d_h - t`, which equals :math:`o_{h,t}` for an
  active :math:`\\Pi_h` and :math:`o_{h,t} + T_h` for an inactive one
  (the Fig. 8 extension) — i.e. it is derivable from ``(offset, period,
  active)``.

So two calls at different absolute times with the same phase-relative tuple
``(w, h's (phase, period, budget, remaining), sorted interferer tuple of
(phase, period, budget, remaining))`` — where ``phase = r_{i,t} - t``
carries the same information as the offset once the period is known, and
``h.active`` is itself derived from ``h.remaining_budget`` — compute
*identical* fixed points and return identical booleans. Sorting the
interferer tuple is also exact: Eq. 1 only ever sums over the interferer
multiset (integer arithmetic, order-independent), never inspects their
order or identity.

The differential harness in ``tests/integration/test_memo_differential.py``
asserts the stronger end-to-end property: memoized and unmemoized simulations
produce bit-identical decision sequences under a shared RNG.
"""

from __future__ import annotations

import time as _wall
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence, Tuple

from repro.core.busy_interval import schedulability_test
from repro.core.state import PartitionState
from repro.obs.gate import GATE

#: Default LRU capacity. Keys are small tuples; at ~200 bytes each this
#: bounds the cache at ~1 MB while comfortably holding every distinct
#: phase-relative state of the paper's |Pi| <= 20 systems per hyperperiod.
DEFAULT_MEMO_SIZE = 4096

#: A fully phase-relative cache key (see module docstring): ``w``, then
#: Pi_h's (phase, period, budget, remaining) 4-tuple, then the sorted
#: interferer tuple of (phase, period, budget, remaining) 4-tuples.
MemoKey = Tuple[int, Tuple[int, int, int, int], Tuple]

#: Adaptive probing defaults (see :meth:`SchedulabilityMemo.prepare`): probe
#: PROBE_WINDOW consecutive decisions; if fewer than PROBE_MIN_HITS of them
#: hit, skip the next BYPASS_SPAN decisions entirely before probing again.
#: Deterministic workloads land at 20-100 decision-hits per 256 once warm,
#: jittered ones at 0-2, so the threshold cleanly separates the regimes.
PROBE_WINDOW = 256
PROBE_MIN_HITS = 8
BYPASS_SPAN = 4096

_ABSENT = object()


def memo_key(
    h: PartitionState, higher: Sequence[PartitionState], t: int, w: int
) -> MemoKey:
    """The phase-relative key under which a test call is cached.

    Everything :func:`schedulability_test` reads, minus absolute time:
    partition names, priorities and ``ready`` flags do not enter the
    analysis, and ``t`` enters only via the replenishment phases captured
    here (``last_replenishment - t`` carries the same information as the
    offset :math:`o_{i,t} = r_{i,t} + T_i - t` once the period is in the
    key, and ``h.active`` is derived from ``h.remaining_budget``).

    This runs on the hit path of every memoized test, so it deliberately
    inlines the phase arithmetic instead of calling
    ``PartitionState.next_replenishment_offset`` — at small :math:`|\\Pi|`
    the key build is the whole cost of a hit. (:meth:`SchedulabilityMemo.
    prepare` goes further and amortizes the interferer tuple across a whole
    decision; the key shape produced there is identical to this one.)
    """
    return (
        w,
        (h.last_replenishment - t, h.period, h.max_budget, h.remaining_budget),
        tuple(
            sorted(
                (p.last_replenishment - t, p.period, p.max_budget, p.remaining_budget)
                for p in higher
            )
        ),
    )


@dataclass
class MemoStats:
    """Hit/miss/eviction counters of one :class:`SchedulabilityMemo`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    #: Decisions the adaptive prepare() path skipped without probing the
    #: cache (the hit rate of the probed windows was below threshold).
    bypassed: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        total = self.lookups
        return self.hits / total if total else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "bypassed": self.bypassed,
            "hit_rate": self.hit_rate,
        }

    def reset(self) -> None:
        self.hits = self.misses = self.evictions = self.bypassed = 0


class SchedulabilityMemo:
    """A bounded-LRU, drop-in callable replacement for the schedulability test.

    Instances have the same signature as
    :func:`~repro.core.busy_interval.schedulability_test` and can be passed
    wherever a tester callable is expected (``candidate_search(...,
    tester=memo)``).

    Args:
        maxsize: LRU capacity (entries). Least-recently-used keys are evicted
            once exceeded; every eviction is counted in :attr:`stats`.
        enabled: Opt-out flag — when False every call falls through to the
            underlying test and the cache stays empty (counters untouched),
            which makes A/B comparisons trivial without re-plumbing callers.
        test: The underlying test function (swappable for unit tests).
        probe_window / probe_min_hits / bypass_span: The adaptive-probing
            knobs of :meth:`prepare` (see there); the defaults suit the
            paper's systems and only unit tests should need to shrink them.
    """

    __slots__ = (
        "maxsize",
        "enabled",
        "stats",
        "probe_window",
        "probe_min_hits",
        "bypass_span",
        "_test",
        "_cache",
        "_decisions",
        "_bypass_left",
        "_probed",
        "_probe_hits",
        "_grace",
        "_obs",
    )

    def __init__(
        self,
        maxsize: int = DEFAULT_MEMO_SIZE,
        enabled: bool = True,
        test: Callable[..., bool] = schedulability_test,
        probe_window: int = PROBE_WINDOW,
        probe_min_hits: int = PROBE_MIN_HITS,
        bypass_span: int = BYPASS_SPAN,
    ):
        if maxsize <= 0:
            raise ValueError(f"memo maxsize must be positive, got {maxsize}")
        self.maxsize = maxsize
        self.enabled = enabled
        self.stats = MemoStats()
        self.probe_window = probe_window
        self.probe_min_hits = probe_min_hits
        self.bypass_span = bypass_span
        self._bypass_left = 0
        self._probed = 0
        self._probe_hits = 0
        # The first probing window runs against a cold cache and would
        # always look dead; never let it trigger a bypass.
        self._grace = True
        self._test = test
        # Per-test entries (the __call__ path) and per-decision entries (the
        # prepare path) live in separate stores, each a strict LRU bounded by
        # maxsize; hits/misses/evictions are pooled in `stats` either way.
        self._cache: "OrderedDict[MemoKey, bool]" = OrderedDict()
        self._decisions: "OrderedDict[tuple, list]" = OrderedDict()
        # Observability scope (attach_obs); None until a run attaches one.
        self._obs = None

    def attach_obs(self, run_obs) -> None:
        """Bind a :class:`repro.obs.RunObs` scope: samples a ``memo.probe``
        span per prepared decision while the obs gate is on. The exact
        hit/miss/eviction/bypass counters stay on :attr:`stats` (ungated)
        and are folded into ``SimulationResult.metrics`` by the engine."""
        self._obs = run_obs

    def __call__(
        self, h: PartitionState, higher: Sequence[PartitionState], t: int, w: int
    ) -> bool:
        if not self.enabled:
            return self._test(h, higher, t, w)
        key = memo_key(h, higher, t, w)
        cache = self._cache
        value = cache.get(key, _ABSENT)
        if value is not _ABSENT:
            cache.move_to_end(key)
            self.stats.hits += 1
            return value
        self.stats.misses += 1
        value = self._test(h, higher, t, w)
        cache[key] = value
        if len(cache) > self.maxsize:
            cache.popitem(last=False)
            self.stats.evictions += 1
        return value

    def prepare(
        self, parts: Sequence[PartitionState], t: int, w: int
    ) -> Optional[Callable[[int], bool]]:
        """Open one *decision*: return a rank-indexed vetting function.

        The candidate search always tests prefixes of the same priority-
        sorted partition list at one ``(t, w)``: rank ``r`` is tested
        against interferers ``parts[:r]``, for ``r = 0, 1, 2, ...``. Probing
        the per-test cache with :func:`memo_key` built from scratch at every
        rank costs :math:`\\mathcal{O}(|\\Pi|^2)` attribute reads *and*
        tuple hashes per decision — as much as the tests it is trying to
        skip. ``prepare`` instead pays for **one** phase-relative key over
        the whole priority order, ``(w, phases(parts))``, mapping to the
        per-rank outcome list of that decision: a hit costs one list index,
        a miss costs the underlying test plus a list store. The coarser key
        is still exact — it determines every per-rank ``(w, h, interferer
        multiset)`` triple.

        Deliberately there is **no** per-test fallback on this path: when
        snapshots do not recur (workload jitter scatters the remaining
        budgets over near-continuous values), per-test probes pay an
        :math:`\\mathcal{O}(|\\Pi|)` tuple hash per rank and almost never
        hit, turning the memo into a net slowdown. Decision-level-only
        keeps the worst case at one key build and one dict probe *per
        decision*, while recurring lattices — deterministic workloads,
        repeated snapshots — still skip their tests entirely.

        On top of that the probing is **adaptive**: decisions are probed in
        windows of ``probe_window``; when a window (past the cold first
        one) yields fewer than ``probe_min_hits`` decision-level hits, the
        next ``bypass_span`` decisions skip the cache entirely (counted in
        ``stats.bypassed``) before probing resumes. Jittered workloads
        recur so rarely (~1% of decisions) that even the per-decision probe
        is a net loss there; bypassing caps the worst-case overhead at the
        probing duty cycle (a few percent) while costing recurring regimes
        nothing. Bypass only changes *when the cache is consulted*, never
        what a consulted cache returns, so exactness is unaffected.

        The returned ``vet(rank)`` computes exactly
        ``schedulability_test(parts[rank], parts[:rank], t, w)`` and shares
        the memo's counters and eviction accounting. While bypassing it is
        a plain uncounted pass-through to the underlying test — NOT the
        memo's ``__call__``, which would quietly reintroduce the per-test
        key builds that bypassing exists to avoid. Returns None only when
        the memo is disabled (callers then fall back to direct test calls).
        """
        if not self.enabled:
            return None
        if self._bypass_left:
            self._bypass_left -= 1
            self.stats.bypassed += 1
            test = self._test

            def raw(rank: int) -> bool:
                return test(parts[rank], parts[:rank], t, w)

            return raw
        probe_t0 = (
            _wall.perf_counter_ns() if self._obs is not None and GATE.enabled else None
        )
        stats = self.stats
        test = self._test
        decisions = self._decisions
        # tuple([...]) over a listcomp beats a genexpr here: no generator
        # frame per partition, and this runs on every probed decision.
        dkey = (
            w,
            tuple(
                [
                    (p.last_replenishment - t, p.period, p.max_budget, p.remaining_budget)
                    for p in parts
                ]
            ),
        )
        fresh = [None] * len(parts)
        entry = decisions.setdefault(dkey, fresh)
        if entry is fresh:
            if len(decisions) > self.maxsize:
                decisions.popitem(last=False)
                stats.evictions += 1
        else:
            # A probed hit refreshes recency: the least-recently-*probed*
            # decision is the one evicted, matching the __call__ LRU.
            decisions.move_to_end(dkey)
            self._probe_hits += 1
        self._probed += 1
        if self._probed >= self.probe_window:
            if self._probe_hits < self.probe_min_hits and not self._grace:
                self._bypass_left = self.bypass_span
            self._grace = False
            self._probed = self._probe_hits = 0

        if probe_t0 is not None:
            self._obs.spans.record(
                "memo.probe",
                probe_t0,
                _wall.perf_counter_ns() - probe_t0,
                sim_ts=t,
                cat="memo",
            )

        def vet(rank: int) -> bool:
            value = entry[rank]
            if value is None:
                stats.misses += 1
                value = entry[rank] = test(parts[rank], parts[:rank], t, w)
            else:
                stats.hits += 1
            return value

        return vet

    def __len__(self) -> int:
        return len(self._cache) + len(self._decisions)

    def clear(self) -> None:
        """Drop every cached entry (counters are kept; see ``stats.reset``).

        Also rewinds the adaptive probing state: a cleared cache is cold
        again, so the next prepare() windows get a fresh grace period.
        """
        self._cache.clear()
        self._decisions.clear()
        self._bypass_left = 0
        self._probed = 0
        self._probe_hits = 0
        self._grace = True
