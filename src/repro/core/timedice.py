"""The TimeDice scheduler facade: one call per scheduling decision.

Combines the candidate search (Algorithm 1, step 1) with a pluggable random
selector (step 2). The facade is deliberately free of simulator state: it maps
a :class:`~repro.core.state.SystemState` snapshot to a
:class:`Decision`, which makes it directly benchmarkable (Table IV measures
exactly this call) and property-testable.
"""

from __future__ import annotations

import random
import time as _wall
from dataclasses import dataclass
from typing import List, Optional

from repro._time import MS
from repro.core.candidacy import Candidate, SearchStats, candidate_search
from repro.core.memo import DEFAULT_MEMO_SIZE, MemoStats, SchedulabilityMemo
from repro.core.selection import Selector, WeightedUtilizationSelector
from repro.core.state import IDLE, SystemState
from repro.obs.gate import GATE

#: The paper's MIN_INV_SIZE: the randomization quantum, 1 ms.
DEFAULT_QUANTUM = 1 * MS


@dataclass
class Decision:
    """Outcome of one TimeDice scheduling decision.

    Attributes:
        choice: The selected partition snapshot, or :data:`IDLE`.
        candidates: The candidate list the selection was made from.
        stats: Search bookkeeping (number of schedulability tests, etc.).
        quantum: The inversion quantum the decision is valid for: the chosen
            partition may run for at most this long before TimeDice must be
            consulted again (unless an event preempts it earlier).
    """

    choice: Candidate
    candidates: List[Candidate]
    stats: SearchStats
    quantum: int

    @property
    def is_idle(self) -> bool:
        return self.choice is IDLE

    @property
    def partition_name(self) -> Optional[str]:
        return None if self.is_idle else self.choice.name


class TimeDice:
    """The TIMEDICE partition scheduler (Algorithm 1).

    Args:
        selector: Random-selection strategy; defaults to the paper's weighted
            lottery (TimeDiceW). Pass
            :class:`~repro.core.selection.UniformSelector` for TimeDiceU.
        quantum: MIN_INV_SIZE (µs); both the inversion length the candidacy
            test assumes and the re-randomization interval. 1 ms by default,
            matching the LITMUS^RT implementation.
        allow_idle: Whether the imaginary IDLE partition may be selected when
            even idling preserves schedulability.
        seed: Seed for the internal RNG; pass ``rng`` instead to share one.
        rng: Optional externally-owned RNG (takes precedence over ``seed``).
        memoize: Reuse schedulability-test outcomes across decisions via
            :class:`~repro.core.memo.SchedulabilityMemo` (default on). The
            cache is exact — decision sequences are bit-identical with or
            without it — so this only trades memory for decide latency.
        memo_size: LRU capacity of the memo when ``memoize`` is on.
    """

    def __init__(
        self,
        selector: Optional[Selector] = None,
        quantum: int = DEFAULT_QUANTUM,
        allow_idle: bool = True,
        seed: Optional[int] = None,
        rng: Optional[random.Random] = None,
        memoize: bool = True,
        memo_size: int = DEFAULT_MEMO_SIZE,
    ):
        if quantum <= 0:
            raise ValueError(f"quantum must be positive, got {quantum}")
        self.selector = selector if selector is not None else WeightedUtilizationSelector()
        self.quantum = quantum
        self.allow_idle = allow_idle
        self.rng = rng if rng is not None else random.Random(seed)
        self.memo: Optional[SchedulabilityMemo] = (
            SchedulabilityMemo(maxsize=memo_size) if memoize else None
        )
        #: Cumulative counters over the scheduler's lifetime.
        self.total_decisions = 0
        self.total_schedulability_tests = 0
        # Observability scope (attach_obs); None until a run attaches one.
        self._obs = None
        self._m_tests = None
        self._m_candidates = None

    def attach_obs(self, run_obs) -> None:
        """Bind a :class:`repro.obs.RunObs` scope (engine hand-off).

        Wires the candidacy sweep's span + counters and forwards the scope
        to the memo. Metrics collect only while the obs gate is on.
        """
        self._obs = run_obs
        self._m_tests = run_obs.registry.counter("decide.schedulability_tests")
        self._m_candidates = run_obs.registry.histogram(
            "decide.candidates", bounds=tuple(range(1, 33))
        )
        if self.memo is not None:
            self.memo.attach_obs(run_obs)

    def decide(self, state: SystemState) -> Decision:
        """Make one scheduling decision at ``state.t``.

        Runs the candidate search with the configured quantum as the
        inversion size, then draws one candidate with the configured
        selector. With no active ready partition the decision is IDLE with an
        empty candidate list.
        """
        if self._obs is not None and GATE.enabled:
            t0 = _wall.perf_counter_ns()
            candidates, stats = candidate_search(
                state, self.quantum, self.allow_idle, tester=self.memo
            )
            self._obs.spans.record(
                "candidacy", t0, _wall.perf_counter_ns() - t0, sim_ts=state.t
            )
            self._m_tests.inc(stats.schedulability_tests)
            self._m_candidates.observe(len(candidates))
        else:
            candidates, stats = candidate_search(
                state, self.quantum, self.allow_idle, tester=self.memo
            )
        self.total_decisions += 1
        self.total_schedulability_tests += stats.schedulability_tests
        if not candidates:
            return Decision(IDLE, [], stats, self.quantum)
        choice = self.selector.select(candidates, state.t, self.rng)
        return Decision(choice, list(candidates), stats, self.quantum)

    @property
    def memo_stats(self) -> Optional[MemoStats]:
        """Hit/miss/eviction counters of the memo, or None when disabled."""
        return self.memo.stats if self.memo is not None else None

    def reset_counters(self) -> None:
        """Zero the lifetime counters (between benchmark repetitions).

        The memo's *counters* are reset too; its cached entries are kept (a
        warm cache is part of steady-state behaviour, and entries are exact).
        """
        self.total_decisions = 0
        self.total_schedulability_tests = 0
        if self.memo is not None:
            self.memo.stats.reset()
