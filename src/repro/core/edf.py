"""EDF schedulability under a partition's budget server.

The paper's analyses (Sec. IV-B) assume fixed-priority local scheduling:
TimeDice's candidate vetting guarantees each partition its budget
:math:`B_i` every period :math:`T_i` (Definition 1), and the local FP
response-time analysis then bounds task deadlines. When the local scheduler
is EDF-based (``RunSpec(scheduler="edf")`` or the REORDER baseline), the
second half of that argument must be replaced: this module supplies the
standard **processor-demand vs supply-bound** feasibility test for EDF task
sets served by a periodic resource (Shin & Lee's compositional framework) —

- :func:`demand_bound` — :math:`dbf(t) = \\sum_i \\max(0,
  \\lfloor (t - D_i)/T_i \\rfloor + 1)\\,C_i`, the worst-case execution
  demand of jobs with both release and deadline inside any interval of
  length :math:`t` (synchronous release, the sporadic worst case);
- :func:`supply_bound` — :math:`sbf(t)`, the least CPU supply a partition
  with budget :math:`B` every :math:`T` receives in any interval of length
  :math:`t` (worst case: budget as early as possible in one period, as late
  as possible afterwards, giving an initial starvation of :math:`2(T-B)`);
- :func:`edf_supply_feasible` — the per-partition verdict: feasible iff
  :math:`dbf(t) \\le sbf(t)` at every absolute deadline up to the analysis
  bound.

Because TimeDice preserves Definition 1 *whatever* priority inversions it
injects, a partition that passes this test keeps its local EDF deadlines
under TimeDice too — which is exactly the vetting the engine runs at
construction when an EDF-based local scheduler is selected
(:attr:`repro.sim.engine.Simulator.edf_supply_report`).

The test is exact for the modeled supply (a budget server that may deliver
its budget anywhere in the period) and conservative for the simulated one.
When the hyperperiod-derived checkpoint bound overflows
:data:`ANALYSIS_CAP`, checkpoints are truncated there and the test degrades
to a (still useful) necessary-condition check plus the utilization bound.
"""

from __future__ import annotations

import math
from functools import reduce
from typing import Dict, Iterable, List, Optional

from repro.model.partition import Partition
from repro.model.system import System
from repro.model.task import Task

#: Largest analysis horizon (µs) the checkpoint sweep will enumerate.
ANALYSIS_CAP = 1 << 32


def demand_bound(tasks: Iterable[Task], t: int) -> int:
    """EDF processor demand of ``tasks`` in any interval of length ``t``."""
    total = 0
    for task in tasks:
        jobs = (t - task.deadline) // task.period + 1
        if jobs > 0:
            total += jobs * task.wcet
    return total


def supply_bound(t: int, period: int, budget: int) -> int:
    """Least supply (µs) a ``budget``-every-``period`` server gives in ``t`` µs."""
    if budget >= period:
        return t  # dedicated processor
    blackout = period - budget
    live = t - blackout
    if live <= 0:
        return 0
    whole = live // period
    partial = live - whole * period - blackout
    return whole * budget + max(0, partial)


def _checkpoints(tasks: List[Task], limit: int) -> List[int]:
    """Absolute deadlines ``k*T_i + D_i <= limit`` — the only points where
    ``dbf`` steps, hence the only ones worth testing."""
    points = set()
    for task in tasks:
        d = task.deadline
        while d <= limit:
            points.add(d)
            d += task.period
    return sorted(points)


def _lcm(values: Iterable[int]) -> int:
    return reduce(lambda a, b: a * b // math.gcd(a, b), values, 1)


def edf_supply_feasible(partition: Partition) -> Optional[str]:
    """Why ``partition``'s task set is not EDF-feasible under its budget
    server, or None when it provably is.

    Demand uses declared WCETs (the engine clamps every activation to WCET,
    so this upper-bounds any simulated workload).
    """
    tasks = list(partition.tasks)
    if not tasks:
        return None
    utilization = sum(task.wcet / task.period for task in tasks)
    supply_ratio = partition.budget / partition.period
    if utilization > supply_ratio + 1e-12:
        return (
            f"task utilization {utilization:.3f} exceeds the budget supply "
            f"ratio {supply_ratio:.3f} ({partition.budget}us/{partition.period}us)"
        )
    limit = min(_lcm([task.period for task in tasks] + [partition.period]), ANALYSIS_CAP)
    for t in _checkpoints(tasks, limit):
        demand = demand_bound(tasks, t)
        supply = supply_bound(t, partition.period, partition.budget)
        if demand > supply:
            return (
                f"demand {demand}us exceeds worst-case supply {supply}us in "
                f"intervals of {t}us (budget {partition.budget}us every "
                f"{partition.period}us)"
            )
    return None


def edf_supply_report(system: System) -> Dict[str, str]:
    """Per-partition infeasibility reasons (empty when every partition's task
    set is EDF-feasible under its budget server)."""
    report: Dict[str, str] = {}
    for partition in system:
        reason = edf_supply_feasible(partition)
        if reason is not None:
            report[partition.name] = reason
    return report


__all__ = [
    "ANALYSIS_CAP",
    "demand_bound",
    "supply_bound",
    "edf_supply_feasible",
    "edf_supply_report",
]
