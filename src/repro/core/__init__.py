"""The paper's primary contribution: the TIMEDICE algorithm (Sec. IV).

Layout:

- :mod:`repro.core.state` — immutable snapshots of partition runtime state
  (remaining budgets :math:`B_i(t)`, last replenishment times
  :math:`r_{i,t}`) that the algorithm operates on. The simulator produces
  them; synthetic ones drive the latency benchmarks.
- :mod:`repro.core.busy_interval` — the level-:math:`\\Pi_h` busy-interval
  analysis (Definition 2, Eqs. 1–3) and the per-partition schedulability test
  (Algorithm 3), including the indirect-interference case for inactive
  partitions (Fig. 8).
- :mod:`repro.core.edf` — the processor-demand vs supply-bound EDF
  feasibility test for partitions whose *local* scheduler is EDF-based
  (the vetting complement to the fixed-priority analysis above).
- :mod:`repro.core.candidacy` — the incremental candidate search
  (Algorithms 1–2, Fig. 9's :math:`\\mathcal{O}(|\\Pi|)` optimization),
  with the imaginary IDLE partition.
- :mod:`repro.core.memo` — exact, bounded-LRU memoization of the
  schedulability test across quanta (phase-relative keys; absolute time
  cancels out of Eq. 1).
- :mod:`repro.core.selection` — uniform, weighted (remaining-utilization
  lottery), and inverse-weighted (Theorem 1 ablation) random selectors.
- :mod:`repro.core.timedice` — the :class:`TimeDice` facade combining
  search and selection into one scheduling decision.
"""

from repro.core.busy_interval import busy_interval, schedulability_test
from repro.core.candidacy import candidate_search
from repro.core.edf import (
    demand_bound,
    edf_supply_feasible,
    edf_supply_report,
    supply_bound,
)
from repro.core.memo import DEFAULT_MEMO_SIZE, MemoStats, SchedulabilityMemo, memo_key
from repro.core.selection import (
    HighestPrioritySelector,
    InverseUtilizationSelector,
    UniformSelector,
    WeightedUtilizationSelector,
)
from repro.core.state import IDLE, PartitionState, SystemState
from repro.core.timedice import DEFAULT_QUANTUM, Decision, TimeDice

__all__ = [
    "IDLE",
    "PartitionState",
    "SystemState",
    "busy_interval",
    "schedulability_test",
    "candidate_search",
    "demand_bound",
    "supply_bound",
    "edf_supply_feasible",
    "edf_supply_report",
    "SchedulabilityMemo",
    "MemoStats",
    "memo_key",
    "DEFAULT_MEMO_SIZE",
    "UniformSelector",
    "WeightedUtilizationSelector",
    "InverseUtilizationSelector",
    "HighestPrioritySelector",
    "TimeDice",
    "Decision",
    "DEFAULT_QUANTUM",
]
