"""Level-:math:`\\Pi_h` busy-interval analysis and schedulability test.

This module implements Definition 2 and Algorithm 3 of the paper. The
busy interval :math:`W_{h,t}(w)` answers: *if a lower-priority partition is
allowed a priority inversion of length* ``w`` *starting at time* ``t``, *how
long until* :math:`\\Pi_h` *and everything above it are guaranteed to have
used up their budgets in the worst case?* It is the sum of

(a) the priority inversion ``w`` itself,
(b) the remaining budgets of every partition above :math:`\\Pi_h` as of ``t``,
(c) interference from all *future* replenishments of those partitions that
    land inside the window (each replenishment arrives as early as its offset
    :math:`o_{j,t} = r_{j,t} + T_j - t` permits and is consumed greedily), and
(d) :math:`\\Pi_h`'s own remaining budget.

The fixed point of the recurrence (Eq. 1)

.. math::

    W^{k+1} = W^0 + \\sum_{\\Pi_j \\in hp(\\Pi_h)}
        \\left\\lceil \\frac{W^k - o_{j,t}}{T_j} \\right\\rceil_0 B_j,
    \\qquad
    W^0 = w + B_h(t) + \\sum_{\\Pi_j \\in hp(\\Pi_h)} B_j(t)

is the worst-case busy interval, and :math:`\\Pi_h` tolerates the inversion iff
:math:`t + W_{h,t}(w) \\le d_h` (Eq. 3).

**Inactive** :math:`\\Pi_h` (Fig. 8): a partition with no remaining budget can
still suffer *indirect* interference — the inversion delays partitions above
it, which cascades into its next period. Algorithm 3 handles this by treating
:math:`\\Pi_h`'s own upcoming replenishment as one more interfering source and
testing against the *next* period's deadline :math:`r_{h,t} + 2 T_h`.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro._time import ceil_div0
from repro.core.state import PartitionState

#: Returned when the recurrence will not converge before the deadline.
#:
#: This is ``None``, not ``float("inf")``: every quantity in the analysis is
#: an integer number of microseconds, and a float sentinel leaks into the
#: ``t + W <= d_h`` comparisons of every caller. Past 2**53 µs a float can no
#: longer represent the window exactly (``float(2**53 + 1) == 2**53``), so
#: the old sentinel silently rounded genuine windows at the deadline edge.
#: ``None`` keeps the arithmetic all-integer and exact; compare with
#: ``is INFEASIBLE`` (or ``is not``) and treat any ``int`` result as a real
#: fixed point.
INFEASIBLE = None

#: Safety valve on fixed-point iterations; with total utilization <= 1 the
#: recurrence converges long before this.
MAX_ITERATIONS = 10_000


def busy_interval(
    h: PartitionState,
    higher: Sequence[PartitionState],
    t: int,
    w: int,
    horizon: Optional[int] = None,
) -> Optional[int]:
    """Worst-case level-``h`` busy interval :math:`W_{h,t}(w)` (µs).

    Args:
        h: The partition being protected.
        higher: All partitions with priority strictly above ``h`` (any order;
            active or inactive — an inactive one contributes 0 to (b) but its
            future replenishments still interfere).
        t: Decision time (absolute µs).
        w: Size of the priority inversion granted to a lower-priority
            partition at ``t`` (µs).
        horizon: Optional early-exit bound (relative µs): iteration stops and
            returns :data:`INFEASIBLE` as soon as the window exceeds it.
            Callers pass the deadline slack so infeasible cases terminate
            immediately, exactly as Algorithm 3 does.

    Returns:
        The fixed point of Eq. (1) as an exact ``int``, or :data:`INFEASIBLE`
        (``None``) when the window exceeds ``horizon`` (or fails to converge
        at all). A window landing *exactly on* the horizon converges — only
        strictly exceeding it is infeasible.
    """
    if w < 0:
        raise ValueError(f"inversion size must be non-negative, got {w}")

    interferers = [(p.next_replenishment_offset(t), p.period, p.max_budget) for p in higher]

    w0 = w + h.remaining_budget + sum(p.remaining_budget for p in higher)
    if not h.active:
        # Fig. 8: the inactive partition's own upcoming replenishments are
        # modeled as one more interfering source.
        interferers.append((h.next_replenishment_offset(t), h.period, h.max_budget))

    window = w0
    for _ in range(MAX_ITERATIONS):
        if horizon is not None and window > horizon:
            return INFEASIBLE
        nxt = w0
        for offset, period, budget in interferers:
            nxt += ceil_div0(window - offset, period) * budget
        if nxt == window:
            return window
        window = nxt
    return INFEASIBLE


def deadline_slack(h: PartitionState, t: int) -> int:
    """Time from ``t`` to the deadline the busy interval must respect.

    For an active :math:`\\Pi_h` this is the current-period deadline
    :math:`r_{h,t} + T_h`; for an inactive one it is the *next* period's
    deadline :math:`r_{h,t} + 2 T_h` (its current budget is already spent, so
    only the upcoming execution can be harmed).
    """
    deadline = h.last_replenishment + h.period
    if not h.active:
        deadline += h.period
    return deadline - t


def schedulability_test(
    h: PartitionState,
    higher: Sequence[PartitionState],
    t: int,
    w: int,
) -> bool:
    """Algorithm 3: does :math:`\\Pi_h` stay schedulable under an inversion of ``w``?

    True iff the worst-case busy interval ends no later than the relevant
    deadline, i.e. :math:`t + W_{h,t}(w) \\le d_h` (Eq. 3, extended to
    :math:`r_{h,t} + 2T_h` for inactive partitions).
    """
    slack = deadline_slack(h, t)
    if slack < 0:
        return False
    window = busy_interval(h, higher, t, w, horizon=slack)
    return window is not INFEASIBLE and window <= slack
