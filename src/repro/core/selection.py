"""Step 2 of Algorithm 1: random selection among the candidates.

Four interchangeable strategies:

- :class:`UniformSelector` — TimeDiceU: every candidate (including IDLE, when
  allowed) is picked with probability :math:`1/|L_C|`.
- :class:`WeightedUtilizationSelector` — TimeDiceW, the paper's default: a
  lottery with tickets proportional to the remaining utilization
  :math:`u_{i,t} = B_i(t)/(d_{i,t} - t)`; the IDLE option receives
  :math:`1 - \\sum u_{i,t}` tickets (clamped at zero). Urgent partitions
  (large leftover budget, close deadline) are favoured, which *levels* the
  weights over time and spreads budget consumption — the Sec. IV-A2 argument.
- :class:`InverseUtilizationSelector` — the Theorem 1 ablation: tickets
  proportional to :math:`1/u_{i,t}`. The theorem proves this *increases*
  temporal locality; the ablation benchmark demonstrates it.
- :class:`HighestPrioritySelector` — degenerate "selector" that always takes
  the first (highest-priority) candidate; with it, TimeDice collapses to the
  NoRandom fixed-priority scheduler (useful for differential testing).

All selectors draw from a caller-supplied :class:`random.Random` so that
simulations are reproducible from a seed.
"""

from __future__ import annotations

import random
from typing import List, Sequence

from repro.core.state import IDLE
from repro.core.candidacy import Candidate


class Selector:
    """Interface: pick one candidate from a non-empty candidate list."""

    #: Short name used in experiment outputs.
    name = "abstract"

    def select(
        self, candidates: Sequence[Candidate], t: int, rng: random.Random
    ) -> Candidate:
        raise NotImplementedError

    def weights(
        self, candidates: Sequence[Candidate], t: int
    ) -> List[float]:
        """Selection probabilities (useful for testing and introspection)."""
        raise NotImplementedError


class HighestPrioritySelector(Selector):
    """Always pick the highest-priority candidate (degenerates to NoRandom)."""

    name = "highest-priority"

    def select(
        self, candidates: Sequence[Candidate], t: int, rng: random.Random
    ) -> Candidate:
        _require_nonempty(candidates)
        for candidate in candidates:
            if candidate is not IDLE:
                return candidate
        return IDLE

    def weights(self, candidates: Sequence[Candidate], t: int) -> List[float]:
        _require_nonempty(candidates)
        probabilities = [0.0] * len(candidates)
        for index, candidate in enumerate(candidates):
            if candidate is not IDLE:
                probabilities[index] = 1.0
                return probabilities
        probabilities[-1] = 1.0
        return probabilities


class UniformSelector(Selector):
    """TimeDiceU: each candidate has equal probability :math:`1/|L_C|`."""

    name = "uniform"

    def select(
        self, candidates: Sequence[Candidate], t: int, rng: random.Random
    ) -> Candidate:
        _require_nonempty(candidates)
        return candidates[rng.randrange(len(candidates))]

    def weights(self, candidates: Sequence[Candidate], t: int) -> List[float]:
        _require_nonempty(candidates)
        return [1.0 / len(candidates)] * len(candidates)


class WeightedUtilizationSelector(Selector):
    """TimeDiceW: lottery tickets proportional to remaining utilization.

    For candidate partitions, :math:`u_{i,t} = B_i(t)/(d_{i,t} - t)`; for the
    IDLE option, :math:`\\max(0, 1 - \\sum_{\\Pi_x \\in L_C} u_{x,t})` — the
    slack the system genuinely has. Weights are normalized to probabilities.
    Degenerate corner (all weights zero, e.g. an IDLE-only list) falls back to
    uniform.
    """

    name = "weighted"

    def weights(self, candidates: Sequence[Candidate], t: int) -> List[float]:
        _require_nonempty(candidates)
        raw: List[float] = []
        utilization_sum = 0.0
        for candidate in candidates:
            if candidate is IDLE:
                raw.append(-1.0)  # placeholder, filled below
            else:
                u = candidate.remaining_utilization(t)
                raw.append(u)
                utilization_sum += u
        idle_weight = max(0.0, 1.0 - utilization_sum)
        raw = [idle_weight if value < 0 else value for value in raw]
        total = sum(raw)
        if total <= 0.0:
            return [1.0 / len(candidates)] * len(candidates)
        return [value / total for value in raw]

    def select(
        self, candidates: Sequence[Candidate], t: int, rng: random.Random
    ) -> Candidate:
        probabilities = self.weights(candidates, t)
        return _draw(candidates, probabilities, rng)


class InverseUtilizationSelector(Selector):
    """Theorem 1 ablation: tickets *inversely* proportional to utilization.

    Included to demonstrate (see ``benchmarks/test_bench_ablation.py``) that
    favouring lax partitions drives weights apart and *increases* temporal
    locality, exactly as Theorem 1 predicts.
    """

    name = "inverse"

    #: Utilization floor so that a zero-utilization candidate does not absorb
    #: all the probability mass.
    epsilon = 1e-3

    def weights(self, candidates: Sequence[Candidate], t: int) -> List[float]:
        _require_nonempty(candidates)
        raw: List[float] = []
        for candidate in candidates:
            if candidate is IDLE:
                raw.append(1.0)  # idling is the "laziest" option
            else:
                raw.append(1.0 / max(candidate.remaining_utilization(t), self.epsilon))
        total = sum(raw)
        return [value / total for value in raw]

    def select(
        self, candidates: Sequence[Candidate], t: int, rng: random.Random
    ) -> Candidate:
        probabilities = self.weights(candidates, t)
        return _draw(candidates, probabilities, rng)


def _require_nonempty(candidates: Sequence[Candidate]) -> None:
    if not candidates:
        raise ValueError("cannot select from an empty candidate list")


def _draw(
    candidates: Sequence[Candidate], probabilities: Sequence[float], rng: random.Random
) -> Candidate:
    """Inverse-CDF draw; robust to tiny normalization error in the last bin."""
    point = rng.random()
    cumulative = 0.0
    for candidate, probability in zip(candidates, probabilities):
        cumulative += probability
        if point < cumulative:
            return candidate
    return candidates[-1]
