"""TimeDice reproduction library.

A faithful, laptop-scale reproduction of *TimeDice: Schedulability-Preserving
Priority Inversion for Mitigating Covert Timing Channels Between Real-time
Partitions* (DSN 2022).

The package is organized bottom-up:

- :mod:`repro.model` — partition/task models and the paper's configurations.
- :mod:`repro.sim` — a discrete-event hierarchical-scheduling simulator (the
  substrate standing in for LITMUS^RT).
- :mod:`repro.core` — the TimeDice algorithm itself: busy-interval analysis,
  candidacy test, candidate search, and the random-selection strategies.
- :mod:`repro.analysis` — worst-case response-time and schedulability analyses.
- :mod:`repro.channel` — the covert timing channel: senders, receivers,
  profiling, Bayesian decoding, and channel-capacity estimation.
- :mod:`repro.ml` — numpy-only classifiers (RBF SVM et al.) for the
  learning-based attack.
- :mod:`repro.baselines` — BLINDER and static TDMA.
- :mod:`repro.car` — the simulated 1/10th-scale self-driving car platform.
- :mod:`repro.experiments` — one module per table/figure of the evaluation.

Quickstart::

    from repro.model.configs import table1_system
    from repro.sim import Simulator, GlobalPolicy
    sim = Simulator(table1_system(), policy=GlobalPolicy.TIMEDICE_WEIGHTED, seed=1)
    result = sim.run_for_ms(1000)
"""

from repro._time import MS, SEC, US, ceil_div, ceil_div0, ms, sec, to_ms, to_sec, us

__version__ = "1.0.0"

from repro.runner.seeding import derive_seed  # noqa: E402 — needs __version__ defined

__all__ = [
    "__version__",
    "derive_seed",
    "US",
    "MS",
    "SEC",
    "ms",
    "us",
    "sec",
    "to_ms",
    "to_sec",
    "ceil_div",
    "ceil_div0",
]
