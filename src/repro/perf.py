"""Batch-engine throughput measurement: the perf_baseline/perf_compare core.

One suite, three workload classes, two engines. Each workload builds a grid
of RunSpecs, times the scalar engine over a sample of them and the batch
engine over the whole grid, and reports cells/sec for both plus their
ratio. Every measurement carries a **results digest** — a hash of the
batch engine's per-run outcome summaries — and a **bit_identical** flag
from comparing the scalar sample's outcomes against the batch outcomes for
the same specs, so a perf artifact can never silently trade correctness
for speed.

Workloads:

- ``three_partition/mixed`` — the Fig. 6 example system under all four
  policy families; the general campaign shape.
- ``three_partition/uniform`` — same system, uniform-selector TimeDice
  only; the batch engine's best class (no per-run weight walks).
- ``feasibility/fig12`` — the Fig. 4/Fig. 12 covert-channel system
  (:func:`repro.experiments.configs.feasibility_experiment`) under the
  Fig. 12 policy sweep; the heaviest per-decision workload in the repo.

``scripts/perf_baseline.py`` freezes a suite run into
``benchmarks/BENCH_baseline.json``; ``scripts/perf_compare.py`` re-runs
the suite and gates on it (digest equality always; speedup-ratio
regression machine-independently; absolute cells/sec only on the same
machine fingerprint).
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import time
from typing import Any, Callable, Dict, List, Sequence

from repro.sim.batch import run_specs_batched
from repro.sim.config import RunSpec, SystemSpec
from repro.sim.engine import Simulator

#: Grid sizes the suite uses by default — small enough for CI, big enough
#: to amortize the batch engine's per-round vector overhead (throughput
#: saturates around 192–256 runs per batch).
DEFAULT_BATCH_SIZE = 256
DEFAULT_SCALAR_SAMPLE = 16

#: Horizon (µs) for the three_partition workloads.
_TP_HORIZON = 500_000

#: feasibility_experiment shape for the fig12-class workload: short message
#: so a CI run stays in seconds, same per-decision cost as the real sweep.
_FEAS_PROFILE_WINDOWS = 8
_FEAS_MESSAGE_WINDOWS = 8


def _three_partition_specs(policies: Sequence[str], count: int) -> List[RunSpec]:
    return [
        RunSpec(
            system=SystemSpec.named("three_partition"),
            policy=policies[index % len(policies)],
            seed=index,
            horizon=_TP_HORIZON,
        )
        for index in range(count)
    ]


def _feasibility_specs(count: int) -> List[RunSpec]:
    from repro.experiments.configs import feasibility_experiment
    from repro.experiments.fig12_accuracy import DEFAULT_POLICIES

    experiment = feasibility_experiment(
        profile_windows=_FEAS_PROFILE_WINDOWS,
        message_windows=_FEAS_MESSAGE_WINDOWS,
    )
    return [
        experiment.runspec(DEFAULT_POLICIES[index % len(DEFAULT_POLICIES)], seed=index)
        for index in range(count)
    ]


WORKLOADS: Dict[str, Callable[[int], List[RunSpec]]] = {
    "three_partition/mixed": lambda count: _three_partition_specs(
        ("norandom", "timedice", "timedice-uniform", "timedice-inverse"), count
    ),
    "three_partition/uniform": lambda count: _three_partition_specs(
        ("timedice-uniform",), count
    ),
    "feasibility/fig12": _feasibility_specs,
}


def machine_fingerprint() -> Dict[str, Any]:
    """Enough platform identity to tell same-machine comparisons apart."""
    return {
        "python": platform.python_version(),
        "machine": platform.machine(),
        "system": platform.system(),
        "cpus": os.cpu_count(),
    }


def _summary(result) -> List[int]:
    return [result.end_time, result.decisions, result.switches, result.deadline_misses]


def results_digest(summaries: Sequence[List[int]]) -> str:
    material = json.dumps(list(summaries), separators=(",", ":"))
    return hashlib.sha256(material.encode("utf-8")).hexdigest()[:16]


def measure_workload(
    name: str,
    batch_size: int = DEFAULT_BATCH_SIZE,
    scalar_sample: int = DEFAULT_SCALAR_SAMPLE,
) -> Dict[str, Any]:
    """Time scalar vs. batch on one workload; verify they agree.

    The scalar engine runs the first ``scalar_sample`` specs of the grid
    cell by cell (the campaign pool's per-process shape); the batch engine
    runs the whole ``batch_size`` grid in one lockstep group. The sampled
    specs are a prefix of the grid, so every scalar outcome has a batch
    counterpart to compare against — ``bit_identical`` reports that
    comparison, and ``digest`` fingerprints all batch outcomes for
    cross-run comparison.
    """
    build = WORKLOADS[name]
    specs = build(batch_size)
    sample = specs[: min(scalar_sample, len(specs))]

    start = time.perf_counter()
    scalar_results = [Simulator.from_spec(s).run_until(s.horizon) for s in sample]
    scalar_wall = time.perf_counter() - start

    start = time.perf_counter()
    batch_results = run_specs_batched(specs)
    batch_wall = time.perf_counter() - start

    scalar_summaries = [_summary(r) for r in scalar_results]
    batch_summaries = [_summary(r) for r in batch_results]
    scalar_cps = len(sample) / scalar_wall if scalar_wall else 0.0
    batch_cps = len(specs) / batch_wall if batch_wall else 0.0
    return {
        "workload": name,
        "batch_size": len(specs),
        "scalar_sample": len(sample),
        "scalar_cells_per_s": round(scalar_cps, 2),
        "batch_cells_per_s": round(batch_cps, 2),
        "speedup": round(batch_cps / scalar_cps, 2) if scalar_cps else 0.0,
        "bit_identical": batch_summaries[: len(scalar_summaries)] == scalar_summaries,
        "digest": results_digest(batch_summaries),
    }


def run_suite(
    batch_size: int = DEFAULT_BATCH_SIZE,
    scalar_sample: int = DEFAULT_SCALAR_SAMPLE,
    workloads: Sequence[str] = (),
) -> Dict[str, Any]:
    """Measure every (or the named) workloads; returns the artifact body."""
    names = list(workloads) if workloads else list(WORKLOADS)
    return {
        "schema": "perf-suite/1",
        "machine": machine_fingerprint(),
        "batch_size": batch_size,
        "scalar_sample": scalar_sample,
        "workloads": {name: measure_workload(name, batch_size, scalar_sample)
                      for name in names},
    }


def format_suite(document: Dict[str, Any]) -> str:
    lines = [
        f"{'workload':<26} {'scalar c/s':>10} {'batch c/s':>10} "
        f"{'speedup':>8} {'identical':>9}"
    ]
    for name, row in sorted(document["workloads"].items()):
        lines.append(
            f"{name:<26} {row['scalar_cells_per_s']:>10.2f} "
            f"{row['batch_cells_per_s']:>10.2f} {row['speedup']:>7.2f}x "
            f"{str(row['bit_identical']):>9}"
        )
    return "\n".join(lines)
