"""Per-task workload behaviours.

A behaviour answers two questions whenever a job of its task arrives:

- how much CPU work does *this* job demand (its actual execution time,
  upper-bounded by the task's WCET for well-formed behaviours), and
- when does the *next* job arrive (the sporadic inter-arrival time).

Four behaviours cover everything in the paper's evaluation:

- :class:`PeriodicBehavior` — strictly periodic, always executes the WCET
  (the ``rtspin``-style benchmark tasks of Table I).
- :class:`NoisyBehavior` — the Sec. III-f noise partitions: execution times
  and inter-arrival times vary randomly by up to 20 % per job.
- :class:`SenderBehavior` — the covert-channel sender: burns the full
  partition budget when the current channel bit is 1, and as little as
  possible when it is 0 (Fig. 3).
- :class:`ReceiverBehavior` — the covert-channel receiver: a fixed-demand
  code block released once per monitoring window whose response time is the
  channel observation.

Senders and receivers are synchronized through a shared
:class:`ChannelScript`, the "agreed-upon start time and monitoring window"
of Sec. III-a.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.model.task import Task

#: The sender's "consume as little as possible" execution time (µs).
SENDER_LOW_EXEC = 50


@dataclass
class ChannelScript:
    """The covert channel's shared modulation schedule.

    One bit is transmitted per monitoring window. During the **profiling
    phase** the sender sends 0 and 1 alternately (Sec. III-b); afterwards it
    sends ``message_bits``. The receiver never reads the bits — experiments
    use :meth:`bit_at` as ground truth for training labels and accuracy
    scoring only.

    Attributes:
        window: Monitoring-window length (µs); also the per-bit duration.
        profile_windows: Number of leading windows carrying the alternating
            profiling pattern 0,1,0,1,…
        message_bits: Bits transmitted after the profiling phase; cycled if
            the run outlasts the list. Experiments typically generate a
            random message with :meth:`random_message`.
        start: Absolute start time of window 0 (µs).
        sender_phases: Optional agreed launch offsets (µs) of the sender's
            jobs *within each window*. The adversary model grants precise
            task launches (Sec. III-g); positioning one burst at the start of
            the receiver's final budget period makes the sender's signal land
            inside the receiver's completion-critical region, which is what
            gives the response-time attack its power. None keeps the sender
            strictly periodic at its replenishments.
    """

    window: int
    profile_windows: int = 0
    message_bits: Sequence[int] = field(default_factory=lambda: (0, 1))
    start: int = 0
    sender_phases: Optional[Sequence[int]] = None

    def __post_init__(self) -> None:
        if self.window <= 0:
            raise ValueError(f"window must be positive, got {self.window}")
        if self.profile_windows < 0:
            raise ValueError("profile_windows must be non-negative")
        if not self.message_bits:
            raise ValueError("message_bits must be non-empty")
        if any(bit not in (0, 1) for bit in self.message_bits):
            raise ValueError("message bits must be 0 or 1")
        if self.sender_phases is not None:
            phases = tuple(sorted(self.sender_phases))
            if not phases:
                raise ValueError("sender_phases must be non-empty when given")
            if phases[0] < 0 or phases[-1] >= self.window:
                raise ValueError("sender phases must lie within [0, window)")
            if len(set(phases)) != len(phases):
                raise ValueError("sender phases must be distinct")
            object.__setattr__(self, "sender_phases", phases)

    def window_index(self, t: int) -> int:
        """Index of the monitoring window containing time ``t``.

        Negative before :attr:`start` (no bit is being transmitted yet).
        """
        return (t - self.start) // self.window

    def bit_at(self, t: int) -> int:
        """The bit the sender is modulating at time ``t`` (0 before start)."""
        index = self.window_index(t)
        if index < 0:
            return 0
        return self.bit_of_window(index)

    def bit_of_window(self, index: int) -> int:
        """The bit carried by window ``index``."""
        if index < 0:
            raise ValueError(f"window index must be non-negative, got {index}")
        if index < self.profile_windows:
            return index % 2
        return self.message_bits[(index - self.profile_windows) % len(self.message_bits)]

    def is_profiling(self, index: int) -> bool:
        """Whether window ``index`` belongs to the profiling phase."""
        return index < self.profile_windows

    @staticmethod
    def random_message(n_bits: int, seed: int) -> List[int]:
        """A reproducible random message (uniform i.i.d. bits)."""
        rng = random.Random(seed)
        return [rng.randrange(2) for _ in range(n_bits)]

    def to_dict(self) -> dict:
        """Plain-JSON form (phases already normalized by ``__post_init__``)."""
        return {
            "window": self.window,
            "profile_windows": self.profile_windows,
            "message_bits": list(self.message_bits),
            "start": self.start,
            "sender_phases": (
                None if self.sender_phases is None else list(self.sender_phases)
            ),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ChannelScript":
        phases = data.get("sender_phases")
        return cls(
            window=int(data["window"]),
            profile_windows=int(data.get("profile_windows", 0)),
            message_bits=tuple(int(bit) for bit in data["message_bits"]),
            start=int(data.get("start", 0)),
            sender_phases=None if phases is None else tuple(int(p) for p in phases),
        )


class Behavior:
    """Workload behaviour interface (stateless; all randomness via ``rng``)."""

    def execution_time(self, task: Task, arrival: int, rng: random.Random) -> int:
        """Actual CPU demand of the job arriving at ``arrival`` (µs, >= 1)."""
        raise NotImplementedError

    def inter_arrival(self, task: Task, arrival: int, rng: random.Random) -> int:
        """Gap from this arrival to the next one (µs, >= task.period)."""
        raise NotImplementedError


class PeriodicBehavior(Behavior):
    """Strictly periodic, always demanding the full WCET."""

    def execution_time(self, task: Task, arrival: int, rng: random.Random) -> int:
        return task.wcet

    def inter_arrival(self, task: Task, arrival: int, rng: random.Random) -> int:
        return task.period


class NoisyBehavior(Behavior):
    """The paper's noise tasks: periods and execution times vary up to ±20 %.

    Execution times are drawn uniformly from ``[(1 - jitter)·e, e]`` — never
    above the WCET, so the task model stays well-formed — and inter-arrival
    times from ``[p, (1 + jitter)·p]`` — never below the period, so the
    sporadic minimum-separation constraint holds.
    """

    def __init__(self, jitter: float = 0.2):
        if not 0 <= jitter < 1:
            raise ValueError(f"jitter must be in [0, 1), got {jitter}")
        self.jitter = jitter

    def execution_time(self, task: Task, arrival: int, rng: random.Random) -> int:
        low = max(1, round(task.wcet * (1.0 - self.jitter)))
        return rng.randint(low, task.wcet)

    def inter_arrival(self, task: Task, arrival: int, rng: random.Random) -> int:
        high = round(task.period * (1.0 + self.jitter))
        return rng.randint(task.period, max(task.period, high))


class SenderBehavior(Behavior):
    """Covert-channel sender: modulates budget consumption by the current bit.

    The sender task's WCET is configured to the full partition budget; a job
    arriving while the script says bit 1 demands the full WCET (using the
    budget up), while bit 0 demands :data:`SENDER_LOW_EXEC` (as little as the
    runtime allows).

    Arrivals: with ``script.sender_phases`` unset, strictly periodic at the
    task's period (budget-replenishment aligned). With phases set, the sender
    launches one job per phase per window — the precisely-timed launches the
    adversary model allows (Sec. III-g). Whoever configures the phases must
    keep consecutive launches at least one replenishment period apart so the
    budget is full at each burst; :func:`default_sender_phases` does this.
    """

    def __init__(self, script: ChannelScript, low_exec: int = SENDER_LOW_EXEC):
        if low_exec <= 0:
            raise ValueError("low_exec must be positive")
        self.script = script
        self.low_exec = low_exec

    def execution_time(self, task: Task, arrival: int, rng: random.Random) -> int:
        if self.script.bit_at(arrival) == 1:
            return task.wcet
        return min(self.low_exec, task.wcet)

    def inter_arrival(self, task: Task, arrival: int, rng: random.Random) -> int:
        phases = self.script.sender_phases
        if phases is None:
            return task.period
        window = self.script.window
        phase = (arrival - self.script.start) % window
        for candidate in phases:
            if candidate > phase:
                return candidate - phase
        return window - phase + phases[0]


def default_sender_phases(window: int, sender_period: int, receiver_period: int) -> Tuple[int, ...]:
    """The launch schedule the feasibility test's adversary pair agrees on.

    Regular bursts at the sender's replenishments for the body of the window
    (they shape the receiver's execution vector), plus one burst positioned
    at the start of the receiver's **final** budget period — the only place a
    burst directly stretches the receiver's completion time, which is what
    the response-time observation measures. Bursts are kept at least one
    sender period apart so each launches with a full budget.
    """
    if window % receiver_period != 0:
        raise ValueError("window must be a whole number of receiver periods")
    target = window - receiver_period
    phases = [p for p in range(0, max(target - sender_period + 1, 0), sender_period)]
    phases.append(target)
    return tuple(phases)


class ReceiverBehavior(Behavior):
    """Covert-channel receiver: one fixed-demand code block per window.

    The receiver task's period is configured to the monitoring window and its
    WCET to the block's demand (three full budget replenishments' worth in
    the Sec. III-f feasibility test). Response times — arrival to finish —
    are collected by a :class:`~repro.sim.trace.ResponseTimeRecorder`.
    """

    def execution_time(self, task: Task, arrival: int, rng: random.Random) -> int:
        return task.wcet

    def inter_arrival(self, task: Task, arrival: int, rng: random.Random) -> int:
        return task.period


def default_behaviors(script: Optional[ChannelScript] = None) -> dict:
    """The behaviour registry keyed by :attr:`Task.behavior`.

    ``sender``/``receiver`` require a channel script; requesting them without
    one raises at simulation start rather than mid-run.
    """
    registry = {
        "periodic": PeriodicBehavior(),
        "noisy": NoisyBehavior(),
    }
    if script is not None:
        registry["sender"] = SenderBehavior(script)
        registry["receiver"] = ReceiverBehavior()
    return registry
