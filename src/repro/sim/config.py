"""RunSpec — the one declarative, content-hashable description of a run.

Before this layer existed the same simulation was described five different
ways: ``Simulator`` kwargs, campaign cell param dicts, CLI flags, experiment
helper arguments, and hand-rolled cache-key dicts. :class:`RunSpec`
consolidates them: it is **frozen** (construct, never mutate), **fully
serializable** (``to_dict``/``from_dict``, ``to_json``/``from_json`` survive
process boundaries, which is what campaign workers need), and
**content-hashable** (:meth:`RunSpec.content_hash` is a pure function of the
run's semantics under :data:`CONFIG_SCHEMA`, which is what sound result
caching needs).

Build a simulator from one with :meth:`repro.sim.engine.Simulator.from_spec`.
Anything that cannot be serialized — observer objects, behaviour instances,
ad-hoc local-scheduler factories — is *not* part of the spec: those are
per-process attachments passed to ``from_spec`` alongside it, and they never
participate in cache keys. Local schedulers themselves, however, **are**
speccable since the scheduler-stack refactor: the ``scheduler`` field names
a registered entry (:func:`repro.sim.registry.register_local_scheduler` —
``"fp"``, ``"edf"``, ``"reorder"``, ...), which a worker in another process
can rebuild and which participates in the content hash whenever it is not
the default. Migration note: code that passed
``local_scheduler_factory=...`` to ``Simulator``/``from_spec`` keeps
working unchanged (an explicit factory is still the escape hatch for
unregistered, process-local schedulers), but a factory that merely selects
a registered scheduler should move to ``RunSpec(scheduler="<name>")`` so
caching stays sound — an explicit factory combined with a non-default
``scheduler`` field is rejected as ambiguous.

Systems are described by :class:`SystemSpec` either **by name** (a registered
builder plus its kwargs — compact, and robust to model-class changes) or
**inline** (the full ``System.to_dict()`` form — for systems constructed ad
hoc). Experiments register their bespoke systems with
:func:`register_system_builder` so their campaign cells stay compact.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, Mapping, Optional

from repro.core.timedice import DEFAULT_QUANTUM
from repro.model import configs as _model_configs
from repro.model.system import System
import repro.sim.local as _sim_local  # noqa: F401 — registers fp/edf/reorder
from repro.sim.behaviors import ChannelScript
from repro.sim.policies import POLICY_NAMES  # noqa: F401 — re-exported; also
# registers the builtin global policies as an import side effect
from repro.sim.registry import (
    DEFAULT_LOCAL_SCHEDULER,
    find_global_policy,
    find_local_scheduler,
    global_policy_names,
    local_scheduler_names,
)

#: Version of the RunSpec wire/hash format. Bump when the meaning of any
#: field changes so stale cached results can never be misread as current.
CONFIG_SCHEMA = 1


def canonical_json(value: Any) -> str:
    """Key-sorted, whitespace-free JSON — the hashing wire format."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


# --------------------------------------------------------------- SystemSpec

#: Registered named system builders: name -> callable(**args) -> System.
SYSTEM_BUILDERS: Dict[str, Callable[..., System]] = {}


def register_system_builder(name: str, builder: Callable[..., System]) -> None:
    """Register a named system builder for :meth:`SystemSpec.named`.

    Re-registering a name with a different callable raises: silently
    repointing a name would change what existing content hashes *mean*.
    Registering the same callable twice is an idempotent no-op (modules
    re-imported by campaign workers do exactly that).
    """
    existing = SYSTEM_BUILDERS.get(name)
    if existing is not None and existing is not builder:
        raise ValueError(f"system builder {name!r} is already registered")
    SYSTEM_BUILDERS[name] = builder


for _name, _builder in (
    ("table1", _model_configs.table1_system),
    ("light_load", _model_configs.light_load_system),
    ("feasibility", _model_configs.feasibility_system),
    ("car", _model_configs.car_system),
    ("three_partition", _model_configs.three_partition_example),
    ("scaled_partition_count", _model_configs.scaled_partition_count),
    ("random", _model_configs.random_system),
):
    register_system_builder(_name, _builder)


@dataclass(frozen=True)
class SystemSpec:
    """A serializable description of a :class:`~repro.model.system.System`.

    Exactly one of the two forms is populated:

    - ``builder`` + ``args``: a name registered via
      :func:`register_system_builder` and the JSON-able kwargs to call it
      with (the compact, preferred form);
    - ``inline``: the full ``System.to_dict()`` document.
    """

    builder: Optional[str] = None
    args: Mapping[str, Any] = field(default_factory=dict)
    inline: Optional[Mapping[str, Any]] = None

    def __post_init__(self) -> None:
        if (self.builder is None) == (self.inline is None):
            raise ValueError("exactly one of builder/inline must be given")
        object.__setattr__(self, "args", dict(self.args))
        if self.inline is not None and self.args:
            raise ValueError("args only apply to the builder form")

    @classmethod
    def named(cls, builder: str, **args: Any) -> "SystemSpec":
        """The compact form: a registered builder name plus its kwargs."""
        return cls(builder=builder, args=args)

    @classmethod
    def from_system(cls, system: System) -> "SystemSpec":
        """The inline form, capturing an already-built system verbatim."""
        return cls(inline=system.to_dict())

    def build(self) -> System:
        if self.inline is not None:
            return System.from_dict(self.inline)
        builder = SYSTEM_BUILDERS.get(self.builder)
        if builder is None:
            raise KeyError(
                f"unknown system builder {self.builder!r}; registered: "
                f"{sorted(SYSTEM_BUILDERS)} (experiments register theirs on "
                "import — is the owning module imported?)"
            )
        return builder(**self.args)

    def to_dict(self) -> dict:
        if self.inline is not None:
            return {"inline": json.loads(canonical_json(self.inline))}
        return {"builder": self.builder, "args": json.loads(canonical_json(self.args))}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SystemSpec":
        if "inline" in data and data["inline"] is not None:
            return cls(inline=data["inline"])
        return cls(builder=data["builder"], args=data.get("args", {}))


# ------------------------------------------------------------------ RunSpec


def _coerce_channel(channel) -> Optional[dict]:
    if channel is None:
        return None
    if isinstance(channel, ChannelScript):
        return channel.to_dict()
    return dict(channel)


def _coerce_faults(faults) -> Optional[dict]:
    if faults is None:
        return None
    if hasattr(faults, "to_dict"):
        return faults.to_dict()
    return dict(faults)


def _coerce_system(system) -> SystemSpec:
    if isinstance(system, SystemSpec):
        return system
    if isinstance(system, System):
        return SystemSpec.from_system(system)
    if isinstance(system, Mapping):
        return SystemSpec.from_dict(system)
    raise TypeError(f"cannot interpret {type(system).__name__} as a SystemSpec")


@dataclass(frozen=True)
class RunSpec:
    """The declarative description of one simulation run.

    Attributes:
        system: What to simulate (:class:`SystemSpec`; also accepts a built
            :class:`~repro.model.system.System` or a spec dict at
            construction).
        policy: Canonical policy name (see
            :data:`repro.sim.policies.POLICY_NAMES`). Policy *instances* are
            not speccable — a spec must be reconstructable in another
            process.
        seed: Master seed; workload, policy, and fault streams all derive
            from it exactly as ``Simulator(seed=...)`` does.
        horizon: Absolute simulation end time (µs), or None when the caller
            drives ``run_until`` itself.
        quantum: TimeDice MIN_INV_SIZE (µs); None means the engine default
            (:data:`repro.core.timedice.DEFAULT_QUANTUM`).
        memoize: Whether TimeDice variants memoize schedulability outcomes.
        channel: Optional covert-channel script
            (:meth:`ChannelScript.to_dict` form; also accepts a
            :class:`ChannelScript`).
        faults: Optional fault plan (:meth:`FaultPlan.to_dict` form; also
            accepts a :class:`~repro.faults.FaultPlan`). ``None`` means
            "adopt the process-ambient plan, if any" — resolve it explicitly
            with :meth:`normalized`.
        budget_donation: The Sec. II-a donation rule toggle.
        measure_overhead: Record wall-clock decide latencies (Table IV /
            Fig. 17 runs only; wall-clock data never affects the hash beyond
            this boolean).
        engine: Which backend executes the run — ``"scalar"`` (the default
            event-loop engine) or ``"batch"`` (the vectorized lockstep
            engine, :mod:`repro.sim.batch`). The two are bit-identical on
            every supported spec, so the engine choice is **hash-neutral**:
            it never participates in :meth:`content_hash` and both engines
            share one cache entry per run.
        scheduler: Registered *local* scheduler name
            (:func:`repro.sim.registry.register_local_scheduler`): ``"fp"``
            (fixed-priority, the default), ``"edf"``, ``"reorder"``, or any
            third-party registration. Unlike ``engine``, a non-default
            scheduler **changes run semantics**, so it participates in
            :meth:`content_hash`; the default is emitted nowhere, keeping
            default-scheduler documents and hashes byte-identical to
            pre-``scheduler``-field ones.
    """

    system: SystemSpec
    policy: str = "norandom"
    seed: int = 0
    horizon: Optional[int] = None
    quantum: Optional[int] = None
    memoize: bool = True
    channel: Optional[Mapping[str, Any]] = None
    faults: Optional[Mapping[str, Any]] = None
    budget_donation: bool = False
    measure_overhead: bool = False
    engine: str = "scalar"
    scheduler: str = DEFAULT_LOCAL_SCHEDULER

    def __post_init__(self) -> None:
        object.__setattr__(self, "system", _coerce_system(self.system))
        object.__setattr__(self, "channel", _coerce_channel(self.channel))
        object.__setattr__(self, "faults", _coerce_faults(self.faults))
        if find_global_policy(self.policy) is None:
            raise ValueError(
                f"unknown policy {self.policy!r}; expected one of "
                f"{global_policy_names()}"
            )
        if find_local_scheduler(self.scheduler) is None:
            raise ValueError(
                f"unknown scheduler {self.scheduler!r}; registered: "
                f"{local_scheduler_names()} (schedulers register on import — "
                "is the owning module imported?)"
            )
        object.__setattr__(self, "seed", int(self.seed))
        if self.horizon is not None:
            horizon = int(self.horizon)
            if horizon <= 0:
                raise ValueError(f"horizon must be positive, got {horizon}")
            object.__setattr__(self, "horizon", horizon)
        if self.quantum is not None:
            quantum = int(self.quantum)
            if quantum <= 0:
                raise ValueError(f"quantum must be positive, got {quantum}")
            object.__setattr__(self, "quantum", quantum)
        if self.engine not in ("scalar", "batch"):
            raise ValueError(
                f"unknown engine {self.engine!r}; expected 'scalar' or 'batch'"
            )
        # Validate eagerly: a malformed channel/faults document should fail
        # at spec construction, not inside a campaign worker.
        self.channel_script()
        self.fault_plan()

    # ------------------------------------------------------------- accessors

    @property
    def effective_quantum(self) -> int:
        return DEFAULT_QUANTUM if self.quantum is None else self.quantum

    def build_system(self) -> System:
        return self.system.build()

    def channel_script(self) -> Optional[ChannelScript]:
        if self.channel is None:
            return None
        return ChannelScript.from_dict(self.channel)

    def fault_plan(self):
        if self.faults is None:
            return None
        from repro.faults import FaultPlan

        return FaultPlan.from_dict(self.faults)

    # --------------------------------------------------------- normalization

    def normalized(self) -> "RunSpec":
        """Resolve everything left implicit, returning a self-contained spec.

        Today that is exactly one thing: the fault plan. A spec with
        ``faults=None`` means "whatever ambient plan is active when the
        simulator is built" — correct for interactive use, but worthless as
        a cache key (the same spec would name different runs under different
        ambient state). Normalization decides the explicit-wins precedence
        **once**, here, via :func:`repro.faults.resolve_fault_plan`; the
        engine no longer encodes it. Campaign layers must hash normalized
        specs.
        """
        from repro.faults import resolve_fault_plan

        plan = resolve_fault_plan(self.fault_plan())
        resolved = None if plan is None else plan.to_dict()
        if resolved == self.faults:
            return self
        return replace(self, faults=resolved)

    # --------------------------------------------------------- serialization

    def to_dict(self) -> dict:
        """Plain-JSON form with every field explicit (schema-tagged).

        The ``engine`` key is emitted only when it is not the default
        ``"scalar"`` — it is an execution-backend selector, not run
        semantics, so default-engine documents round-trip byte-identically
        with pre-engine-field ones. The ``scheduler`` key follows the same
        emit-only-when-non-default rule (so default documents stay
        byte-identical), but for the opposite reason: a non-default
        scheduler *is* run semantics and must reach the hash.
        """
        doc = {
            "schema": CONFIG_SCHEMA,
            "system": self.system.to_dict(),
            "policy": self.policy,
            "seed": self.seed,
            "horizon": self.horizon,
            "quantum": self.quantum,
            "memoize": self.memoize,
            "channel": None if self.channel is None else dict(self.channel),
            "faults": None if self.faults is None else dict(self.faults),
            "budget_donation": self.budget_donation,
            "measure_overhead": self.measure_overhead,
        }
        if self.engine != "scalar":
            doc["engine"] = self.engine
        if self.scheduler != DEFAULT_LOCAL_SCHEDULER:
            doc["scheduler"] = self.scheduler
        return doc

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunSpec":
        schema = data.get("schema", CONFIG_SCHEMA)
        if schema != CONFIG_SCHEMA:
            raise ValueError(
                f"RunSpec schema {schema} is not supported (expected {CONFIG_SCHEMA})"
            )
        return cls(
            system=SystemSpec.from_dict(data["system"]),
            policy=data.get("policy", "norandom"),
            seed=data.get("seed", 0),
            horizon=data.get("horizon"),
            quantum=data.get("quantum"),
            memoize=data.get("memoize", True),
            channel=data.get("channel"),
            faults=data.get("faults"),
            budget_donation=data.get("budget_donation", False),
            measure_overhead=data.get("measure_overhead", False),
            engine=data.get("engine", "scalar"),
            scheduler=data.get("scheduler", DEFAULT_LOCAL_SCHEDULER),
        )

    def to_json(self) -> str:
        return canonical_json(self.to_dict())

    @classmethod
    def from_json(cls, text: str) -> "RunSpec":
        return cls.from_dict(json.loads(text))

    def content_hash(self) -> str:
        """Content address of this run (40 hex chars).

        A pure function of the spec's semantics: stable across field order,
        JSON round-trips, and process boundaries; distinct on every field
        (the schema version is part of the hashed material, so a format bump
        invalidates everything at once). The ``engine`` field is excluded:
        scalar and batch execution are bit-identical, so both address the
        same cached result. The ``scheduler`` field *is* included whenever
        it is non-default (``to_dict`` omits the default, so ``"fp"`` specs
        hash exactly as pre-field ones did). Hash **normalized** specs when
        the address must be ambient-state-independent.
        """
        material = self.to_dict()
        material.pop("engine", None)
        return hashlib.sha256(canonical_json(material).encode("utf-8")).hexdigest()[
            :40
        ]

    def replace(self, **changes: Any) -> "RunSpec":
        """A changed copy (:func:`dataclasses.replace` with re-validation)."""
        return replace(self, **changes)


__all__ = [
    "CONFIG_SCHEMA",
    "RunSpec",
    "SystemSpec",
    "SYSTEM_BUILDERS",
    "register_system_builder",
    "canonical_json",
]
