"""The vectorized batch-simulation engine.

Campaign sweeps (fig. 4, fig. 12, the load/defense matrices) run thousands
of :class:`~repro.sim.config.RunSpec` cells that differ only in seed,
policy, or fault plan over the *same* partition system. The scalar engine
pays Python-object overhead at every scheduling point of every run —
snapshot construction, candidate search, selector dispatch — which is the
campaign throughput bottleneck.

:class:`BatchSimulator` advances ``B`` compatible runs in lockstep, holding
per-partition budgets, replenishment lattices, head-job demands, and
candidate masks as ``(run, partition)`` numpy arrays. Each round delivers
due events, consults the per-run policies, and executes one slice for every
live run; the per-round vector work replaces the per-run Python work of the
scalar pipeline:

- budget replenishments come from a ``next_replenish`` lattice instead of
  heap events (at most one replenishment per partition is ever pending,
  because the engine never advances past an undelivered event);
- the polling-server forfeit, the next-event horizon, the NoRandom argmax,
  and the TDMA slot lookup are single array expressions over all runs;
- the TimeDice candidate search runs the Eq. (1) busy-interval fixed point
  for **all priority ranks of all runs at once** as a ``(B, N, N)``
  interference tensor, then derives each run's candidate list from the
  prefix-AND of the per-rank pass mask (more tests than the scalar
  incremental sweep, identical outcomes);
- slice ends, budget/demand accounting, and context-switch counting are
  masked array updates.

Divergent per-run decisions are handled by masked sub-steps, never by
falling back to a scalar run. The only per-run Python left is what *must*
replicate the scalar engine's RNG-consumption order exactly: job arrivals
(workload-RNG draws in per-run event order), the TimeDice selector draw
(sequential float accumulation reading integers out of the arrays), and
job completions.

**Bit-identity contract**: for every supported spec the batch engine
produces the same decision sequence, segment trace, job records, and
deterministic metrics as ``Simulator.from_spec(spec).run_until(h)`` —
enforced by ``tests/integration/test_batch_differential.py``. Unsupported
specs (``budget_donation``, ``measure_overhead``, custom behaviours or
local schedulers) fall back to the scalar engine; the fallback ticks the
gated ``batch.fallback`` counter in :data:`BATCH_METRICS`.

What the batch engine does **not** reproduce: the schedulability memo (its
``memo.*`` counters are engine-implementation artifacts, absent here), the
``decide.wall_ns`` latency histogram, and ``run_until`` pause/resume.
"""

from __future__ import annotations

import heapq
import itertools
import random
from typing import Dict, List, Optional, Sequence

import numpy as np

import repro.faults as _faults
import repro.obs as _obs
import repro.obs.events as _events
from repro.core.busy_interval import MAX_ITERATIONS
from repro.obs.gate import GATE
from repro.obs.registry import MetricsRegistry, register_process_registry
from repro.sim.behaviors import default_behaviors
import repro.sim.registry as _registry
from repro.sim.config import RunSpec, canonical_json
from repro.sim.engine import SimulationResult
from repro.sim.local import Job
from repro.sim.trace import JobRecord

#: Process-wide batch-engine telemetry. ``batch.fallback`` counts specs
#: that requested the batch engine but were routed to the scalar one
#: (gated, like every counter, on the obs gate).
BATCH_METRICS = register_process_registry(MetricsRegistry("batch"))

#: Sentinel "time" for an empty arrival heap (never reached: horizons are
#: int64-safe microsecond counts).
_NEVER = np.int64(2**62)

#: The InverseUtilizationSelector's utilization floor.
_INVERSE_EPSILON = 1e-3

#: Shared schedulability-memo size bound. The memo is a plain dict cleared
#: wholesale when it outgrows this — exactness is unaffected (entries are a
#: pure function of their key) and hot phase lattices repopulate within one
#: hyperperiod.
_MEMO_CAP = 1 << 16

#: Memo-miss count at or below which the early-exit integer fixed point
#: beats launching the (B, N, N) tensor (whose cost is dominated by numpy
#: call overhead, not data size, at campaign-sized batches).
_PYTHON_FIXPOINT_CUTOFF = 32


def batch_compatible(spec: RunSpec) -> Optional[str]:
    """Why ``spec`` cannot run on the batch engine, or None when it can.

    The batch engine covers every speccable run except: the two features
    whose semantics live in scalar-only code paths (the Sec. II-a budget
    donation fallback and per-decision wall-clock measurement), non-default
    local schedulers (``spec.scheduler`` — the vectorized ready-queue model
    is fixed-priority only), and global policies whose registry entry is not
    marked batch-capable (third-party registrations).
    """
    if spec.budget_donation:
        return "budget_donation"
    if spec.measure_overhead:
        return "measure_overhead"
    if spec.scheduler != _registry.DEFAULT_LOCAL_SCHEDULER:
        return "scheduler"
    entry = _registry.find_global_policy(spec.policy)
    if entry is None or not entry.batch:
        return "policy"
    return None


def batch_group_key(spec: RunSpec) -> tuple:
    """Cells sharing this key may advance in lockstep: same system document
    (hence same partition count, priorities, and TDMA table) and same
    horizon. Seeds, policies, quanta, channels, and fault plans may differ
    freely within a group."""
    return (canonical_json(spec.build_system().to_dict()), spec.horizon)


class _Run:
    """Per-run Python state the arrays cannot hold."""

    __slots__ = (
        "spec",
        "workload_rng",
        "policy_rng",
        "selector_kind",
        "quantum",
        "behaviors",
        "injector",
        "fault_budget_ranks",
        "observers",
        "obs",
        "arrivals",
        "acount",
        "ready",
        "m_replenish",
        "m_arrival",
        "m_segments",
        "m_busy_us",
        "m_idle_us",
    )

    def __init__(self, spec: RunSpec, system, observers: Sequence) -> None:
        self.spec = spec
        seed = spec.seed
        # The scalar engine's exact stream derivations. Labels and selector
        # kinds come from the policy registry (the scalar engine reads the
        # same data off the built instance), so a registered third-party
        # policy name can never be mislabeled by a stale string map.
        self.workload_rng = random.Random(seed * 2 + 1)
        entry = _registry.get_global_policy(spec.policy)
        self.selector_kind = entry.selector_kind
        self.policy_rng = (
            random.Random(seed * 2 + 0x9E3779B9)
            if self.selector_kind is not None
            else None
        )
        self.quantum = spec.effective_quantum
        self.behaviors = default_behaviors(spec.channel_script())
        self.observers = tuple(observers)
        self.obs = _obs.RunObs(label=entry.label)
        registry = self.obs.registry
        self.m_replenish = registry.counter("engine.events.replenish")
        self.m_arrival = registry.counter("engine.events.arrival")
        self.m_segments = registry.counter("engine.segments")
        self.m_busy_us = registry.counter("engine.busy_us")
        self.m_idle_us = registry.counter("engine.idle_us")

        plan = spec.fault_plan()
        self.injector: Optional[_faults.FaultInjector] = None
        self.fault_budget_ranks: tuple = ()
        if plan is not None:
            injector = _faults.FaultInjector(
                plan, seed, partitions=[p.name for p in system]
            )
            if injector.active:
                injector.attach_obs(self.obs)
                self.injector = injector
                self.fault_budget_ranks = tuple(
                    rank
                    for rank, part in enumerate(system.partitions)
                    if part.name in injector._budget
                )

        # Arrivals-only event heap: (time, insertion counter, rank, task
        # index). Replenishments live in the next_replenish lattice instead.
        self.arrivals: List[tuple] = []
        self.acount = itertools.count()
        self.ready: List[List[Job]] = [[] for _ in system.partitions]


class BatchSimulator:
    """Advance many compatible runs in lockstep (see module docstring).

    Args:
        specs: The runs. All must share one canonical system document
            (:func:`batch_group_key`) and pass :func:`batch_compatible`;
            anything else raises ``ValueError`` at construction.
        observers: Optional per-run observer lists, aligned with ``specs``.

    The engine runs each spec exactly once, to one common horizon:
    :meth:`run` has no pause/resume (``run_until`` carry) semantics.
    """

    def __init__(
        self,
        specs: Sequence[RunSpec],
        observers: Optional[Sequence[Sequence]] = None,
    ) -> None:
        if not specs:
            raise ValueError("BatchSimulator needs at least one spec")
        specs = [spec.normalized() for spec in specs]
        for spec in specs:
            reason = batch_compatible(spec)
            if reason is not None:
                raise ValueError(
                    f"spec is not batch-compatible ({reason}); run it on the "
                    "scalar engine"
                )
        self.system = specs[0].build_system()
        doc = canonical_json(self.system.to_dict())
        for spec in specs[1:]:
            if canonical_json(spec.build_system().to_dict()) != doc:
                raise ValueError(
                    "all specs in a batch must share one system document"
                )
        self.specs = specs

        parts = self.system.partitions
        n = len(parts)
        b = len(specs)
        self._n = n
        self._b = b
        self._names = [p.name for p in parts]
        self._tasks = [list(p.tasks) for p in parts]
        self._period = np.array([p.period for p in parts], dtype=np.int64)
        self._max_budget = np.array([p.budget for p in parts], dtype=np.int64)
        self._polling = np.array([p.server == "polling" for p in parts])
        self._periodic = np.array([p.server == "periodic" for p in parts])

        # Struct-of-arrays run state, one row per run.
        self._rem = np.tile(self._max_budget, (b, 1))
        self._last_repl = np.zeros((b, n), dtype=np.int64)
        self._next_repl = np.tile(self._period, (b, 1))
        self._nready = np.zeros((b, n), dtype=np.int64)
        self._head_rem = np.zeros((b, n), dtype=np.int64)
        self._head_started = np.full((b, n), -1, dtype=np.int64)
        self._now = np.zeros(b, dtype=np.int64)
        self._arr_peek = np.full(b, _NEVER, dtype=np.int64)
        self._decisions = np.zeros(b, dtype=np.int64)
        self._switches = np.zeros(b, dtype=np.int64)
        self._misses = np.zeros(b, dtype=np.int64)
        # Last-running key per run: -2 = "__none__", -1 = idle, rank else.
        self._last_key = np.full(b, -2, dtype=np.int64)
        self._quantum = np.array(
            [spec.effective_quantum for spec in specs], dtype=np.int64
        )

        if observers is None:
            observers = [()] * b
        if len(observers) != b:
            raise ValueError("observers must align with specs")
        self._runs = [
            _Run(spec, self.system, obs) for spec, obs in zip(specs, observers)
        ]
        self._any_observers = any(run.observers for run in self._runs)

        # Group runs by registry-declared selector kind, not by comparing
        # policy-name strings: None = non-randomized (norandom/tdma split by
        # name below among batch-capable builtins).
        kinds = [run.selector_kind for run in self._runs]
        policies = [spec.policy for spec in specs]
        self._idx_norandom = np.array(
            [i for i, p in enumerate(policies) if p == "norandom"], dtype=np.intp
        )
        self._idx_timedice = np.array(
            [i for i, kind in enumerate(kinds) if kind is not None],
            dtype=np.intp,
        )
        self._idx_tdma = np.array(
            [i for i, p in enumerate(policies) if p == "tdma"], dtype=np.intp
        )
        self._any_util_selector = any(
            kind in ("weighted", "inverse") for kind in kinds
        )
        # Hot-loop helpers for _decide_timedice.
        self._period_list = self._period.tolist()
        self._budget_list = self._max_budget.tolist()
        self._pow2 = np.array([1 << r for r in range(n)], dtype=np.int64)
        self._cand_cache: Dict[tuple, List[int]] = {}
        quanta = {spec.effective_quantum for spec in specs}
        self._uniform_quantum = len(quanta) == 1
        self._uniform_q = next(iter(quanta))
        self._rng_by_b = [run.policy_rng for run in self._runs]
        self._kind_by_b = [run.selector_kind for run in self._runs]
        # UniformSelector draws via rng.randrange(n), which is a thin
        # argument-checking wrapper over Random._randbelow(n) — call the
        # latter directly when available (identical bit stream, one call
        # frame less on the hottest line of uniform-selector campaigns).
        self._randbelow_by_b = [
            getattr(run.policy_rng, "_randbelow", None)
            or (run.policy_rng.randrange if run.policy_rng else None)
            for run in self._runs
        ]
        # Static pieces of the (B, N, N) schedulability tensor: the budget
        # each partition j contributes to the rank-r interference sum when
        # j ranks strictly higher (lower triangle). The dynamic j == r
        # self-interference term (only while rank r is inactive) is applied
        # as a separate 2-D pass in :meth:`_schedulability_masks`.
        self._budget_tril = (
            np.tril(np.ones((n, n), dtype=np.int64), -1) * self._max_budget[None, :]
        )[None, :, :]
        # Shared phase-relative schedulability memo (see repro.core.memo for
        # the exactness argument): (quantum, replenishment phases, remaining
        # budgets) -> first failing rank. Period and max-budget vectors are
        # part of the batch's shared system, so they drop out of the key —
        # which also lets every run in the batch share one cache.
        self._sched_memo: Dict[tuple, int] = {}

        if len(self._idx_tdma):
            from repro.sim.policies import TDMAPolicy

            table = TDMAPolicy(self.system)
            self._tdma_hyper = table.hyperperiod
            self._tdma_starts = np.array(
                [s.start for s in table.slots], dtype=np.int64
            )
            self._tdma_ends = np.array([s.end for s in table.slots], dtype=np.int64)
            rank_of = {name: i for i, name in enumerate(self._names)}
            self._tdma_owner = np.array(
                [rank_of[s.partition] for s in table.slots], dtype=np.int64
            )
            # starts padded with the hyperperiod: the idle gap after the
            # last slot ends at the wrap-around.
            self._tdma_starts_ext = np.append(self._tdma_starts, self._tdma_hyper)

        self._prime()

    # ----------------------------------------------------------------- setup

    def _prime(self) -> None:
        """Queue each run's first arrivals, in the scalar priming order."""
        for b, run in enumerate(self._runs):
            for rank, tasks in enumerate(self._tasks):
                for task_index, task in enumerate(tasks):
                    heapq.heappush(
                        run.arrivals,
                        (task.offset, next(run.acount), rank, task_index),
                    )
            if run.arrivals:
                self._arr_peek[b] = run.arrivals[0][0]

    # ---------------------------------------------------------------- events

    def _sync_head(self, b: int, rank: int) -> None:
        """Re-derive the head-job mirror arrays for ``(run, partition)``."""
        lst = self._runs[b].ready[rank]
        self._nready[b, rank] = len(lst)
        if lst:
            head = lst[0]
            self._head_rem[b, rank] = head.remaining
            self._head_started[b, rank] = (
                -1 if head.started_at is None else head.started_at
            )
        else:
            self._head_rem[b, rank] = 0
            self._head_started[b, rank] = -1

    def _writeback_head(self, b: int, rank: int) -> None:
        """Flush the array mirror back into the head Job object."""
        lst = self._runs[b].ready[rank]
        if lst:
            head = lst[0]
            head.remaining = int(self._head_rem[b, rank])
            started = int(self._head_started[b, rank])
            head.started_at = None if started < 0 else started

    def _deliver_replenishments(self, alive: np.ndarray, obs_on: bool) -> None:
        due = (self._next_repl <= self._now[:, None]) & alive[:, None]
        if not due.any():
            return
        rows, cols = np.nonzero(due)
        # Default refill; fault-targeted cells are fixed up below with the
        # same (partition-independent) stream order as the scalar engine.
        self._last_repl[rows, cols] = self._next_repl[rows, cols]
        self._rem[rows, cols] = self._max_budget[cols]
        for b, run in enumerate(self._runs):
            if run.fault_budget_ranks:
                for rank in run.fault_budget_ranks:
                    if due[b, rank]:
                        self._rem[b, rank] = run.injector.perturb_budget(
                            self._names[rank],
                            int(self._last_repl[b, rank]),
                            int(self._max_budget[rank]),
                        )
        self._next_repl[rows, cols] += self._period[cols]
        if obs_on:
            counts = due.sum(axis=1)
            for b in np.nonzero(counts)[0]:
                self._runs[b].m_replenish.inc(int(counts[b]))

    def _deliver_arrivals(self, alive_idx: np.ndarray, obs_on: bool) -> None:
        due_runs = alive_idx[
            self._arr_peek[alive_idx] <= self._now[alive_idx]
        ]
        for b in due_runs:
            run = self._runs[int(b)]
            heap = run.arrivals
            now_b = int(self._now[b])
            injector = run.injector
            arrived = 0
            while heap and heap[0][0] <= now_b:
                t, _, rank, task_index = heapq.heappop(heap)
                task = self._tasks[rank][task_index]
                behavior = run.behaviors[task.behavior]
                demand = behavior.execution_time(task, t, run.workload_rng)
                demand = max(1, min(demand, task.wcet))
                if injector is not None:
                    demand = injector.perturb_demand(
                        self._names[rank], task, t, demand
                    )
                job = Job(
                    task=task,
                    partition=self._names[rank],
                    arrival=t,
                    demand=demand,
                )
                self._writeback_head(int(b), rank)
                lst = run.ready[rank]
                lst.append(job)
                lst.sort(key=lambda j: (j.task.local_priority, j.arrival, j.job_id))
                self._sync_head(int(b), rank)
                gap = behavior.inter_arrival(task, t, run.workload_rng)
                gap = max(gap, 1)
                if injector is not None:
                    gap = injector.perturb_gap(self._names[rank], task, t, gap)
                heapq.heappush(heap, (t + gap, next(run.acount), rank, task_index))
                arrived += 1
            self._arr_peek[b] = heap[0][0] if heap else _NEVER
            if obs_on and arrived:
                run.m_arrival.inc(arrived)

    # ---------------------------------------------------------------- decide

    def _schedulability_masks(self, idx: np.ndarray) -> np.ndarray:
        """Eq. (1) fixed point for every priority rank of every run in
        ``idx`` at once; returns the (len(idx), N) pass mask."""
        now = self._now[idx][:, None]
        rem = self._rem[idx]
        offset = self._last_repl[idx] + self._period[None, :] - now
        inactive = rem == 0
        slack = offset + np.where(inactive, self._period[None, :], 0)
        w0 = self._quantum[idx][:, None] + np.cumsum(rem, axis=1)
        period_j = self._period[None, None, :]
        period_r = self._period[None, :]
        # diag_budget[b, r]: rank r's own replenishments interfere with its
        # test only while it is inactive (Fig. 8); strictly-higher ranks
        # always do, via the static lower-triangular weights.
        diag_budget = np.where(inactive, self._max_budget[None, :], 0)

        window = w0.copy()
        undone = slack >= 0
        passed = np.zeros_like(undone)
        rows = np.arange(idx.shape[0])
        for _ in range(MAX_ITERATIONS):
            live = undone.any(axis=1)
            if not live.all():
                # Compact fully-decided rows out of the iteration; the
                # tensor below is the whole cost of this function.
                if not live.any():
                    break
                keep = np.nonzero(live)[0]
                rows = rows[keep]
                undone = undone[keep]
                window = window[keep]
                slack = slack[keep]
                w0 = w0[keep]
                offset = offset[keep]
                diag_budget = diag_budget[keep]
            undone &= window <= slack  # window > slack -> INFEASIBLE
            if not undone.any():
                break
            x = window[:, :, None] - offset[:, None, :]
            # ceil(x / p) for x > 0, clamped to 0 otherwise: for x <= 0 the
            # (-(-x // p)) identity yields a value <= 0, so one maximum()
            # replaces the x > 0 predicate and its where().
            reps = np.maximum(-((-x) // period_j), 0)
            nxt = w0 + (reps * self._budget_tril).sum(axis=2)
            dreps = np.maximum(-((-(window - offset)) // period_r), 0)
            nxt += dreps * diag_budget
            converged = undone & (nxt == window)
            conv_r, conv_c = np.nonzero(converged)
            passed[rows[conv_r], conv_c] = True
            undone &= ~converged
            window = np.where(undone, nxt, window)
        return passed

    def _decide(
        self,
        alive: np.ndarray,
        choice: np.ndarray,
        max_slice: np.ndarray,
    ) -> None:
        """Fill per-run decisions: ``choice`` rank (-1 idle), ``max_slice``
        in µs (-1 means unbounded)."""
        ready_flag = (self._nready > 0) | (self._periodic[None, :] & (self._rem > 0))
        ar = (self._rem > 0) & ready_flag

        idx = self._idx_norandom
        if len(idx):
            sub = ar[idx]
            any_ar = sub.any(axis=1)
            choice[idx] = np.where(any_ar, sub.argmax(axis=1), -1)
            max_slice[idx] = -1

        idx = self._idx_tdma
        if len(idx):
            phase = self._now[idx] % self._tdma_hyper
            pos = np.searchsorted(self._tdma_ends, phase, side="right")
            in_table = pos < len(self._tdma_ends)
            pos_c = np.minimum(pos, len(self._tdma_ends) - 1)
            in_slot = in_table & (self._tdma_starts[pos_c] <= phase)
            owner = self._tdma_owner[pos_c]
            runnable = in_slot & ar[idx, owner]
            choice[idx] = np.where(runnable, owner, -1)
            until = np.where(
                in_slot,
                self._tdma_ends[pos_c] - phase,
                self._tdma_starts_ext[pos] - phase,
            )
            max_slice[idx] = until

        idx = self._idx_timedice
        if len(idx):
            live = idx[alive[idx]]
            if len(live):
                self._decide_timedice(live, ar, choice)
                max_slice[live] = self._quantum[live]

    def _first_fail_python(self, phases: List[int], rems: List[int], w: int) -> int:
        """Exact-int first failing rank for one run (the small-miss-set path
        of :meth:`_decide_timedice`): the scalar busy-interval fixed point
        rank by rank, with early exit at the first failure — cheaper than
        the (B, N, N) tensor when only a few runs missed the memo."""
        periods = self._period_list
        budgets = self._budget_list
        w0 = w
        for r in range(self._n):
            rem_r = rems[r]
            offset_r = phases[r] + periods[r]
            inactive = rem_r == 0
            slack = offset_r + (periods[r] if inactive else 0)
            if slack < 0:
                return r
            w0 += rem_r
            window = w0
            for _ in range(MAX_ITERATIONS):
                if window > slack:
                    return r
                nxt = w0
                for j in range(r):
                    x = window - (phases[j] + periods[j])
                    if x > 0:
                        nxt += -(-x // periods[j]) * budgets[j]
                if inactive:
                    x = window - offset_r
                    if x > 0:
                        nxt += -(-x // periods[r]) * budgets[r]
                if nxt == window:
                    break
                window = nxt
            else:
                return r  # iteration cap: INFEASIBLE, hence failed
        return self._n

    def _cands_for(self, bits: int, limit: int) -> List[int]:
        """Candidate prefix for a (ready-bitmask, first-fail limit) pair:
        the highest-priority active-ready rank is always a candidate; lower
        actives only up to the first failing rank; IDLE iff every rank
        passes. (Cached — there are only 2^N * (N+1) possible inputs and a
        campaign revisits a handful of them.)"""
        cands: List[int] = []
        for r in range(self._n):
            if bits >> r & 1:
                if not cands or r <= limit:
                    cands.append(r)
                else:
                    break
        if not cands:
            # No active ready partition: the candidate list is [IDLE] and
            # the selector still burns its draw.
            cands = [-1]
        elif limit == self._n:
            cands.append(-1)
        return cands

    def _decide_timedice(
        self, live: np.ndarray, ar: np.ndarray, choice: np.ndarray
    ) -> None:
        """The TimeDice decision for every live TimeDice run.

        The schedulability outcome is served from the shared phase-relative
        memo where possible (keyed on the raw bytes of each run's
        ``(phases, remaining budgets)`` row — period and budget vectors are
        batch constants); memo misses take the vectorized ``(B, N, N)``
        fixed point when there are many, the early-exit integer one when
        there are few. Everything per-run after that — the candidate cache
        probe, selector weights, the RNG draw — runs in plain Python over
        ``.tolist()`` rows, because it must consume each run's policy RNG
        in exactly the scalar order (and a handful of float ops per run is
        cheaper in Python than as length-N array expressions anyway).
        """
        n = self._n
        live_list = live.tolist()
        phases = self._last_repl[live] - self._now[live][:, None]
        rem = self._rem[live]
        packed = np.concatenate([phases, rem], axis=1)
        blob = packed.tobytes()
        row_bytes = 2 * n * 8
        q_rows = None if self._uniform_quantum else self._quantum[live].tolist()
        memo = self._sched_memo
        keys: List = [
            blob[k * row_bytes : (k + 1) * row_bytes] for k in range(len(live_list))
        ]
        if q_rows is not None:
            keys = [(q, key) for q, key in zip(q_rows, keys)]
        limits: List[Optional[int]] = list(map(memo.get, keys))
        miss_ks: List[int] = [k for k, lim in enumerate(limits) if lim is None]
        if miss_ks:
            if len(miss_ks) <= _PYTHON_FIXPOINT_CUTOFF:
                phase_rows = phases.tolist()
                rem_rows = rem.tolist()
                for k in miss_ks:
                    w = self._uniform_q if q_rows is None else q_rows[k]
                    limit = self._first_fail_python(phase_rows[k], rem_rows[k], w)
                    limits[k] = limit
                    memo[keys[k]] = limit
            else:
                passed = self._schedulability_masks(live[miss_ks])
                all_pass = passed.all(axis=1)
                fails = np.where(all_pass, n, (~passed).argmax(axis=1)).tolist()
                for k, limit in zip(miss_ks, fails):
                    limits[k] = limit
                    memo[keys[k]] = limit
            if len(memo) > _MEMO_CAP:
                memo.clear()

        u_rows = None
        if self._any_util_selector:
            # PartitionState.remaining_utilization for every rank at once.
            # int64/float64 division is exact vs. the scalar's int/int
            # division: every operand is far below 2**53.
            horizon = phases + self._period[None, :]
            u = np.minimum(1.0, rem / np.maximum(horizon, 1))
            u_rows = np.where(horizon <= 0, (rem > 0).astype(np.float64), u).tolist()

        arbits = (ar[live].astype(np.int64) @ self._pow2).tolist()
        cand_cache = self._cand_cache
        randbelow_by_b = self._randbelow_by_b
        rng_by_b = self._rng_by_b
        kind_by_b = self._kind_by_b
        picks: List[int] = []
        for k, b in enumerate(live_list):
            limit = limits[k]
            cand_key = (arbits[k], limit)
            cands = cand_cache.get(cand_key)
            if cands is None:
                cands = self._cands_for(arbits[k], limit)
                cand_cache[cand_key] = cands

            kind = kind_by_b[b]
            if kind == "uniform":
                picks.append(cands[randbelow_by_b[b](len(cands))])
                continue
            rng = rng_by_b[b]
            if len(cands) == 1:
                # Both utilization selectors assign a lone candidate (IDLE
                # included) probability exactly 1.0, and rng.random() is
                # always < 1.0 — draw and take it.
                rng.random()
                picks.append(cands[0])
                continue
            # IDLE (-1), when present, is always the last candidate, so the
            # scalar's placeholder-then-replace construction reduces to
            # appending the idle weight last. The division by `total` is
            # folded into the cumulative walk: identical float operations
            # in identical order, just no intermediate probability list.
            u_row = u_rows[k]
            if kind == "weighted":
                raw: List[float] = []
                utilization_sum = 0.0
                has_idle = cands[-1] < 0
                for c in cands[:-1] if has_idle else cands:
                    u_c = u_row[c]
                    raw.append(u_c)
                    utilization_sum += u_c
                if has_idle:
                    raw.append(max(0.0, 1.0 - utilization_sum))
                total = sum(raw)
            else:  # inverse
                raw = [
                    1.0 if c < 0 else 1.0 / max(u_row[c], _INVERSE_EPSILON)
                    for c in cands
                ]
                total = sum(raw)
            point = rng.random()
            cumulative = 0.0
            chosen = cands[-1]
            if total <= 0.0:
                # Degenerate weighted case: uniform probabilities.
                probability = 1.0 / len(cands)
                for candidate in cands:
                    cumulative += probability
                    if point < cumulative:
                        chosen = candidate
                        break
            else:
                for candidate, weight in zip(cands, raw):
                    cumulative += weight / total
                    if point < cumulative:
                        chosen = candidate
                        break
            picks.append(chosen)
        # One fancy-indexed write-back instead of a numpy scalar
        # assignment per run.
        choice[live] = picks

    # --------------------------------------------------------------- run loop

    def run(self, t_end: int) -> List[SimulationResult]:
        """Advance every run from 0 to absolute time ``t_end`` (µs)."""
        if t_end <= 0:
            raise ValueError(f"t_end must be positive, got {t_end}")
        b = self._b
        obs_on = GATE.enabled
        slow_path = obs_on or self._any_observers
        choice = np.empty(b, dtype=np.int64)
        max_slice = np.empty(b, dtype=np.int64)
        rows_all = np.arange(b)

        while True:
            alive = self._now < t_end
            if not alive.any():
                break
            alive_idx = np.nonzero(alive)[0]

            # Step 1: deliver due events, then server semantics.
            self._deliver_replenishments(alive, obs_on)
            self._deliver_arrivals(alive_idx, obs_on)
            forfeit = (
                self._polling[None, :]
                & (self._rem > 0)
                & (self._nready == 0)
                & alive[:, None]
            )
            if forfeit.any():
                self._rem[forfeit] = 0

            # Step 2: decide.
            choice.fill(-1)
            max_slice.fill(-1)
            self._decide(alive, choice, max_slice)
            self._decisions[alive] += 1
            if slow_path:
                for bi in alive_idx:
                    run = self._runs[int(bi)]
                    if run.observers:
                        c = int(choice[bi])
                        name = None if c < 0 else self._names[c]
                        for observer in run.observers:
                            observer.on_decision(int(self._now[bi]), name)

            # Step 3: execute one slice per live run.
            nearest = np.minimum(self._next_repl.min(axis=1), self._arr_peek)
            end = nearest.copy()
            bounded = max_slice >= 0
            np.minimum(
                end,
                self._now + np.maximum(max_slice, 1),
                out=end,
                where=bounded,
            )
            chosen = choice >= 0
            cols = np.where(chosen, choice, 0)
            rem_c = self._rem[rows_all, cols]
            has_job = self._nready[rows_all, cols] > 0
            normal = chosen & has_job & (rem_c > 0)
            drain = chosen & ~has_job & self._periodic[cols] & (rem_c > 0)
            np.minimum(end, self._now + rem_c, out=end, where=normal | drain)
            np.minimum(
                end,
                self._now + self._head_rem[rows_all, cols],
                out=end,
                where=normal,
            )
            np.minimum(end, t_end, out=end)
            duration = end - self._now

            exec_mask = (normal | drain) & alive
            if exec_mask.any():
                r = np.nonzero(exec_mask)[0]
                c = choice[r]
                self._rem[r, c] -= duration[r]
                nm = normal & alive
                if nm.any():
                    r = np.nonzero(nm)[0]
                    c = choice[r]
                    self._head_rem[r, c] -= duration[r]
                    fresh = self._head_started[r, c] < 0
                    self._head_started[r[fresh], c[fresh]] = self._now[r[fresh]]

            key = np.where((normal | drain), choice, -1)
            self._switches[alive & (key != self._last_key) & (self._last_key != -2)] += 1
            self._last_key[alive] = key[alive]

            if slow_path:
                self._emit_segments(
                    alive_idx, choice, normal, drain, end, duration, obs_on
                )

            self._now[alive] = end[alive]

            # Completions: head jobs that just ran out of demand.
            done = normal & alive & (self._head_rem[rows_all, cols] == 0)
            if done.any():
                for bi in np.nonzero(done)[0]:
                    self._complete_head(int(bi), int(choice[bi]))

        return [self._account(bi) for bi in range(b)]

    def _emit_segments(
        self,
        alive_idx: np.ndarray,
        choice: np.ndarray,
        normal: np.ndarray,
        drain: np.ndarray,
        end: np.ndarray,
        duration: np.ndarray,
        obs_on: bool,
    ) -> None:
        """The scalar ``_emit_segment`` per live run (observers/obs only)."""
        for bi in alive_idx:
            b = int(bi)
            run = self._runs[b]
            dur = int(duration[b])
            if normal[b] or drain[b]:
                rank = int(choice[b])
                partition = self._names[rank]
                task = run.ready[rank][0].task.name if normal[b] else None
            else:
                partition = None
                task = None
            if obs_on:
                run.m_segments.inc()
                if partition is None:
                    run.m_idle_us.inc(dur)
                else:
                    run.m_busy_us.inc(dur)
            if run.observers:
                start = int(self._now[b])
                for observer in run.observers:
                    observer.on_segment(start, start + dur, partition, task)

    def _complete_head(self, b: int, rank: int) -> None:
        run = self._runs[b]
        lst = run.ready[rank]
        job = lst.pop(0)
        job.remaining = 0
        job.started_at = int(self._head_started[b, rank])
        job.finished_at = int(self._now[b])
        self._sync_head(b, rank)
        if job.finished_at - job.arrival > job.task.deadline:
            self._misses[b] += 1
        if run.observers:
            record = JobRecord(
                task=job.task.name,
                partition=job.partition,
                arrival=job.arrival,
                started_at=job.started_at,
                finished_at=job.finished_at,
                demand=job.demand,
            )
            for observer in run.observers:
                observer.on_job_complete(record)

    def _account(self, b: int) -> SimulationResult:
        run = self._runs[b]
        result = SimulationResult(
            end_time=int(self._now[b]),
            decisions=int(self._decisions[b]),
            switches=int(self._switches[b]),
            deadline_misses=int(self._misses[b]),
        )
        metrics = run.obs.registry.snapshot()
        if run.injector is not None:
            metrics.update(run.injector.metrics())
        result.metrics = metrics
        if _events.EVENTS.active:
            _events.emit(
                "engine.run",
                label=run.obs.label,
                engine="batch",
                end_time=result.end_time,
                decisions=result.decisions,
                deadline_misses=result.deadline_misses,
            )
        return result


class BatchRunAdapter:
    """``Simulator.from_spec``'s batch backend for a single spec.

    Duck-types the one engine method campaign tasks use: ``run_until``.
    The batch engine has no pause/resume, so the adapter is single-shot.
    """

    def __init__(self, spec: RunSpec, observers: Sequence = ()):
        self.spec = spec
        self.observers = list(observers)
        self._consumed = False

    def run_until(self, t_end: int) -> SimulationResult:
        if self._consumed:
            raise RuntimeError(
                "the batch engine does not support resumed runs; use "
                "engine='scalar' for pause/resume"
            )
        self._consumed = True
        return BatchSimulator([self.spec], observers=[self.observers]).run(t_end)[0]


def run_specs_batched(
    specs: Sequence[RunSpec],
    observers: Optional[Sequence[Sequence]] = None,
) -> List[SimulationResult]:
    """Run ``specs`` (one shared system + horizon) on the batch engine.

    Every spec must carry the same, non-None ``horizon``; results come back
    in spec order.
    """
    horizons = {spec.horizon for spec in specs}
    if len(horizons) != 1 or None in horizons:
        raise ValueError(
            f"run_specs_batched needs one shared horizon, got {sorted(map(str, horizons))}"
        )
    (horizon,) = horizons
    return BatchSimulator(specs, observers=observers).run(horizon)
