"""Discrete-event hierarchical-scheduling simulator.

This is the substrate that stands in for LITMUS^RT (Sec. V-A): a
deterministic, integer-microsecond, two-level scheduler simulation.

- :mod:`repro.sim.events` — the event queue (replenishments, job arrivals).
- :mod:`repro.sim.behaviors` — per-task workload behaviours: strictly
  periodic, noisy (±20 % jitter, the paper's noise partitions), covert-channel
  sender and receiver driven by a :class:`~repro.sim.behaviors.ChannelScript`.
- :mod:`repro.sim.local` — partition-local schedulers (fixed-priority
  preemptive by default; EDF and the REORDER obfuscation baseline ship
  here; BLINDER's transformation plugs in from :mod:`repro.baselines`).
- :mod:`repro.sim.registry` — the spec-addressable scheduler registries:
  local schedulers by name (``RunSpec.scheduler``) and global policies
  with their engine metadata (label, selector kind, batch capability).
- :mod:`repro.sim.policies` — global scheduling policies: fixed priority
  (NoRandom), TimeDiceU/W/inverse, static TDMA.
- :mod:`repro.sim.trace` — observers: segment traces, response-time records,
  execution vectors, budget accounting, decision/switch counters.
- :mod:`repro.sim.engine` — the :class:`~repro.sim.engine.Simulator` itself.
"""

from repro.sim.behaviors import ChannelScript
from repro.sim.config import (
    CONFIG_SCHEMA,
    RunSpec,
    SystemSpec,
    register_system_builder,
)
from repro.sim.engine import HookSet, SimulationResult, Simulator
from repro.sim.local import (
    EDFLocalScheduler,
    FixedPriorityLocalScheduler,
    REORDERLocalScheduler,
    REORDERPolicy,
)
from repro.sim.policies import (
    POLICY_NAMES,
    FixedPriorityPolicy,
    GlobalPolicy,
    TDMAPolicy,
    TimeDicePolicy,
    make_policy,
)
from repro.sim.registry import (
    global_policy_names,
    local_scheduler_names,
    make_local_scheduler_factory,
    register_global_policy,
    register_local_scheduler,
)
from repro.sim.trace import (
    BudgetAccountant,
    DecisionCounter,
    ExecutionVectorRecorder,
    ResponseTimeRecorder,
    SegmentRecorder,
)
from repro.sim.validation import (
    InvariantChecker,
    InvariantViolation,
    check_behavior_well_formed,
    check_system_behaviors,
)

__all__ = [
    "Simulator",
    "SimulationResult",
    "HookSet",
    "ChannelScript",
    "RunSpec",
    "SystemSpec",
    "CONFIG_SCHEMA",
    "register_system_builder",
    "GlobalPolicy",
    "FixedPriorityPolicy",
    "TimeDicePolicy",
    "TDMAPolicy",
    "make_policy",
    "POLICY_NAMES",
    "EDFLocalScheduler",
    "FixedPriorityLocalScheduler",
    "REORDERLocalScheduler",
    "REORDERPolicy",
    "register_local_scheduler",
    "register_global_policy",
    "local_scheduler_names",
    "global_policy_names",
    "make_local_scheduler_factory",
    "SegmentRecorder",
    "ResponseTimeRecorder",
    "ExecutionVectorRecorder",
    "BudgetAccountant",
    "DecisionCounter",
    "InvariantChecker",
    "InvariantViolation",
    "check_behavior_well_formed",
    "check_system_behaviors",
]
