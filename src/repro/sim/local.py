"""Partition-local scheduling.

The paper's implementation (and its analysis, Sec. IV-B) assume
fixed-priority preemptive scheduling *inside* each partition; TimeDice never
touches the local level. The local scheduler is pluggable — and, since the
scheduler-stack refactor, **spec-addressable**: every scheduler here
registers itself with :func:`repro.sim.registry.register_local_scheduler`
under a name a :class:`~repro.sim.config.RunSpec` can select (``"fp"``,
``"edf"``, ``"reorder"``; BLINDER registers ``"blinder"`` from its own
module). :class:`FixedPriorityLocalScheduler` is the default;
:class:`EDFLocalScheduler` orders by earliest absolute deadline; and
:class:`REORDERLocalScheduler` is a REORDER-style obfuscation baseline
(Chen et al.): EDF with randomized reordering of *eligible* jobs — jobs
whose execution fits within the slack of every more urgent pending job.

A :class:`Job` is one activation of a task; the engine owns job lifecycle
(arrival → executing → complete) and calls into the local scheduler only to
order the ready queue.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import List, Optional

from repro.model.task import Task
from repro.sim.registry import register_local_scheduler

_job_ids = itertools.count()


@dataclass
class Job:
    """One activation of a task.

    Attributes:
        task: The owning task.
        partition: Name of the owning partition.
        arrival: Absolute release time (µs).
        demand: Actual execution demand of this activation (µs).
        remaining: Work still to do (µs); 0 means complete.
        started_at: First time the job got the CPU (None until then).
        finished_at: Completion time (None until complete).
    """

    task: Task
    partition: str
    arrival: int
    demand: int
    remaining: int = field(default=-1)
    started_at: Optional[int] = None
    finished_at: Optional[int] = None
    job_id: int = field(default_factory=lambda: next(_job_ids))

    def __post_init__(self) -> None:
        if self.demand <= 0:
            raise ValueError(f"job demand must be positive, got {self.demand}")
        if self.remaining < 0:
            self.remaining = self.demand

    @property
    def complete(self) -> bool:
        return self.remaining == 0

    @property
    def response_time(self) -> Optional[int]:
        if self.finished_at is None:
            return None
        return self.finished_at - self.arrival


class LocalScheduler:
    """Interface for partition-local scheduling policies.

    One instance per partition; the engine notifies arrivals and completions
    and asks :meth:`pick` for the job to run whenever the partition holds the
    CPU. ``has_ready`` feeds the global scheduler's view of whether the
    partition would actually use the CPU.
    """

    def on_arrival(self, job: Job, t: int) -> None:
        raise NotImplementedError

    def on_complete(self, job: Job, t: int) -> None:
        raise NotImplementedError

    def on_executed(self, job: Job, duration: int, t: int) -> None:
        """Called after the partition executed ``job`` for ``duration`` µs."""

    def on_replenish(self, t: int) -> None:
        """Called when the partition's budget is replenished (period start)."""

    def pick(self, t: int) -> Optional[Job]:
        """The job the partition runs if given the CPU at ``t``."""
        raise NotImplementedError

    def has_ready(self, t: int) -> bool:
        return self.pick(t) is not None

    def pending_count(self) -> int:
        """Jobs arrived but not yet complete (ready or withheld)."""
        raise NotImplementedError


class FixedPriorityLocalScheduler(LocalScheduler):
    """Fixed-priority preemptive local scheduling, FIFO within a task.

    The ready queue is kept sorted by (local priority, arrival, job id); the
    head is re-evaluated at every engine scheduling point, which yields
    preemptive behaviour: a newly arrived higher-priority job is picked at
    the next decision even though a lower-priority one was in progress.
    """

    def __init__(self) -> None:
        self._ready: List[Job] = []

    def on_arrival(self, job: Job, t: int) -> None:
        self._ready.append(job)
        self._ready.sort(key=lambda j: (j.task.local_priority, j.arrival, j.job_id))

    def on_complete(self, job: Job, t: int) -> None:
        self._ready.remove(job)

    def pick(self, t: int) -> Optional[Job]:
        return self._ready[0] if self._ready else None

    def has_ready(self, t: int) -> bool:
        return bool(self._ready)

    def pending_count(self) -> int:
        return len(self._ready)


def absolute_deadline(job: Job) -> int:
    """A job's absolute deadline: arrival + the task's relative deadline."""
    return job.arrival + job.task.deadline


class EDFLocalScheduler(LocalScheduler):
    """Earliest-absolute-deadline-first preemptive local scheduling.

    The ready queue is kept sorted by ``(arrival + deadline, arrival,
    job id)`` — the tiebreak is deterministic and seed-independent, so two
    EDF partitions fed the same job sequence always pick identically. The
    head is re-evaluated at every engine scheduling point, which yields
    preemptive EDF: a newly arrived more urgent job is picked at the next
    decision.

    Feasibility under the partition's budget server is *not* implied by the
    paper's fixed-priority analysis; the engine runs the processor-demand
    vs supply-bound vetting pass (:mod:`repro.core.edf`) at construction.
    """

    def __init__(self) -> None:
        self._ready: List[Job] = []

    @staticmethod
    def _key(job: Job):
        return (absolute_deadline(job), job.arrival, job.job_id)

    def on_arrival(self, job: Job, t: int) -> None:
        self._ready.append(job)
        self._ready.sort(key=self._key)

    def on_complete(self, job: Job, t: int) -> None:
        self._ready.remove(job)

    def pick(self, t: int) -> Optional[Job]:
        return self._ready[0] if self._ready else None

    def has_ready(self, t: int) -> bool:
        return bool(self._ready)

    def pending_count(self) -> int:
        return len(self._ready)


class REORDERLocalScheduler(LocalScheduler):
    """REORDER-style schedule obfuscation for dynamic-priority partitions.

    REORDER (Chen et al., PAPERS.md) secures EDF systems by randomizing the
    execution order within the slack the schedule affords: at each decision
    it runs a uniformly random job from the **eligible** set instead of the
    EDF head. A job is eligible iff running it to completion first, then the
    rest of the queue in EDF order, still meets every absolute deadline on a
    dedicated processor — i.e. its remaining execution fits within the
    minimum slack of every more urgent pending job. The EDF head is always
    eligible on a feasible queue, so when nothing else fits REORDER degrades
    to plain EDF (and when the queue is already infeasible it falls back to
    the EDF head, the least-damage choice).

    Determinism: the RNG is drawn at most once per ready-queue change — the
    chosen job is cached and invalidated on arrivals and completions, never
    on repeated ``pick`` calls — so the draw sequence is a function of the
    job-event sequence, not of how often the engine peeks. Each partition
    gets an independent stream derived from the run seed
    (``derive_seed(seed, "sched/reorder/<partition>")``), so REORDER runs
    never perturb the workload or global-policy streams.
    """

    def __init__(self, seed: int = 0) -> None:
        self._ready: List[Job] = []
        self._rng = random.Random(seed)
        self._choice: Optional[Job] = None

    def on_arrival(self, job: Job, t: int) -> None:
        self._ready.append(job)
        self._ready.sort(key=EDFLocalScheduler._key)
        self._choice = None

    def on_complete(self, job: Job, t: int) -> None:
        self._ready.remove(job)
        self._choice = None

    def eligible(self, t: int) -> List[Job]:
        """Jobs runnable next without forcing any deadline miss (see class
        docstring); ordered by EDF key, so index 0 is the EDF head."""
        out: List[Job] = []
        for candidate in self._ready:
            if t + candidate.remaining > absolute_deadline(candidate):
                continue
            elapsed = candidate.remaining
            feasible = True
            for other in self._ready:
                if other is candidate:
                    continue
                elapsed += other.remaining
                if t + elapsed > absolute_deadline(other):
                    feasible = False
                    break
            if feasible:
                out.append(candidate)
        return out

    def pick(self, t: int) -> Optional[Job]:
        if not self._ready:
            return None
        if self._choice is None:
            eligible = self.eligible(t)
            if not eligible:
                self._choice = self._ready[0]  # infeasible: degrade to EDF
            elif len(eligible) == 1:
                self._choice = eligible[0]
            else:
                self._choice = eligible[self._rng.randrange(len(eligible))]
        return self._choice

    def has_ready(self, t: int) -> bool:
        return bool(self._ready)

    def pending_count(self) -> int:
        return len(self._ready)


#: The name the ISSUE/ROADMAP use for the baseline as a whole.
REORDERPolicy = REORDERLocalScheduler


# ------------------------------------------------- registry (spec-addressable)


def _fp_factory(partition, seed):
    return FixedPriorityLocalScheduler()


def _edf_factory(partition, seed):
    return EDFLocalScheduler()


def _reorder_factory(partition, seed):
    return REORDERLocalScheduler(seed=0 if seed is None else seed)


register_local_scheduler("fp", _fp_factory)
register_local_scheduler("edf", _edf_factory, edf_based=True)
register_local_scheduler("reorder", _reorder_factory, edf_based=True, seeded=True)
