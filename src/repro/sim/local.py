"""Partition-local scheduling.

The paper's implementation (and its analysis, Sec. IV-B) assume
fixed-priority preemptive scheduling *inside* each partition; TimeDice never
touches the local level. The local scheduler is nevertheless pluggable so
that BLINDER's local-schedule transformation
(:class:`repro.baselines.blinder.BlinderLocalScheduler`) can be swapped in
for the Sec. V-C comparison.

A :class:`Job` is one activation of a task; the engine owns job lifecycle
(arrival → executing → complete) and calls into the local scheduler only to
order the ready queue.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import List, Optional

from repro.model.task import Task

_job_ids = itertools.count()


@dataclass
class Job:
    """One activation of a task.

    Attributes:
        task: The owning task.
        partition: Name of the owning partition.
        arrival: Absolute release time (µs).
        demand: Actual execution demand of this activation (µs).
        remaining: Work still to do (µs); 0 means complete.
        started_at: First time the job got the CPU (None until then).
        finished_at: Completion time (None until complete).
    """

    task: Task
    partition: str
    arrival: int
    demand: int
    remaining: int = field(default=-1)
    started_at: Optional[int] = None
    finished_at: Optional[int] = None
    job_id: int = field(default_factory=lambda: next(_job_ids))

    def __post_init__(self) -> None:
        if self.demand <= 0:
            raise ValueError(f"job demand must be positive, got {self.demand}")
        if self.remaining < 0:
            self.remaining = self.demand

    @property
    def complete(self) -> bool:
        return self.remaining == 0

    @property
    def response_time(self) -> Optional[int]:
        if self.finished_at is None:
            return None
        return self.finished_at - self.arrival


class LocalScheduler:
    """Interface for partition-local scheduling policies.

    One instance per partition; the engine notifies arrivals and completions
    and asks :meth:`pick` for the job to run whenever the partition holds the
    CPU. ``has_ready`` feeds the global scheduler's view of whether the
    partition would actually use the CPU.
    """

    def on_arrival(self, job: Job, t: int) -> None:
        raise NotImplementedError

    def on_complete(self, job: Job, t: int) -> None:
        raise NotImplementedError

    def on_executed(self, job: Job, duration: int, t: int) -> None:
        """Called after the partition executed ``job`` for ``duration`` µs."""

    def on_replenish(self, t: int) -> None:
        """Called when the partition's budget is replenished (period start)."""

    def pick(self, t: int) -> Optional[Job]:
        """The job the partition runs if given the CPU at ``t``."""
        raise NotImplementedError

    def has_ready(self, t: int) -> bool:
        return self.pick(t) is not None

    def pending_count(self) -> int:
        """Jobs arrived but not yet complete (ready or withheld)."""
        raise NotImplementedError


class FixedPriorityLocalScheduler(LocalScheduler):
    """Fixed-priority preemptive local scheduling, FIFO within a task.

    The ready queue is kept sorted by (local priority, arrival, job id); the
    head is re-evaluated at every engine scheduling point, which yields
    preemptive behaviour: a newly arrived higher-priority job is picked at
    the next decision even though a lower-priority one was in progress.
    """

    def __init__(self) -> None:
        self._ready: List[Job] = []

    def on_arrival(self, job: Job, t: int) -> None:
        self._ready.append(job)
        self._ready.sort(key=lambda j: (j.task.local_priority, j.arrival, j.job_id))

    def on_complete(self, job: Job, t: int) -> None:
        self._ready.remove(job)

    def pick(self, t: int) -> Optional[Job]:
        return self._ready[0] if self._ready else None

    def has_ready(self, t: int) -> bool:
        return bool(self._ready)

    def pending_count(self) -> int:
        return len(self._ready)
