"""The discrete-event two-level scheduling simulator.

The engine advances time from scheduling point to scheduling point. At each
point it (i) delivers due events (budget replenishments, job arrivals),
(ii) consults the global policy with a fresh :class:`SystemState` snapshot,
and (iii) lets the chosen partition's highest-priority ready job run for the
longest slice compatible with the next event, the policy's slice bound (the
TimeDice quantum or the TDMA slot end), the partition's remaining budget, and
the job's remaining demand. Budget depletes only while a task of the
partition executes (Sec. II-a), and is replenished to :math:`B_i` at every
multiple of :math:`T_i`.

Determinism: one seeded :class:`random.Random` drives workload jitter and a
second, independent one drives the policy's dice, so the same seed replays
the same run bit-for-bit.
"""

from __future__ import annotations

import random
import time as _wall
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

import repro.faults as _faults
import repro.obs as _obs
import repro.obs.events as _events
from repro._time import MS, SEC
from repro.core.state import PartitionState, SystemState
from repro.core.timedice import DEFAULT_QUANTUM
from repro.model.system import System
from repro.obs.gate import GATE
from repro.sim.behaviors import Behavior, ChannelScript, default_behaviors
from repro.sim.events import Event, EventKind, EventQueue
from repro.sim.local import Job, LocalScheduler
from repro.sim.policies import GlobalPolicyBase, PolicyChoice, make_policy
from repro.sim.registry import (
    DEFAULT_LOCAL_SCHEDULER,
    find_local_scheduler,
    make_local_scheduler_factory,
)
from repro.sim.trace import JobRecord, Observer, SegmentRecorder


class _PartitionRuntime:
    """Mutable per-partition state owned by the engine."""

    __slots__ = ("spec", "remaining_budget", "last_replenishment", "local")

    def __init__(self, spec, local: LocalScheduler):
        self.spec = spec
        self.remaining_budget = spec.budget
        self.last_replenishment = 0
        self.local = local


@dataclass(frozen=True)
class HookSet:
    """The hook chain one ``run_until`` call runs with, precomputed.

    The loop used to interrogate process-global state (``GATE.enabled``) and
    ``is None``-guard every optional collaborator at every scheduling point.
    A :class:`HookSet` snapshots those answers once per ``run_until`` call —
    the gate may legitimately toggle *between* calls, never mid-call — so
    the hot loop branches on plain booleans and the all-disabled
    configuration runs a measurable fast path (no wall-clock reads, no gated
    counter calls, no observer iteration).

    Attributes:
        obs_on: ``repro.obs`` gate state; enables gated counters, the
            decide-latency histogram, and span recording.
        measure: The simulator's ``measure_overhead`` flag (exact per-decide
            wall-clock series on the result).
        timed: ``obs_on or measure`` — whether decide calls are clocked.
        faults: The active :class:`~repro.faults.FaultInjector`, or None.
        observers: Snapshot of the observer list as a tuple.
    """

    obs_on: bool
    measure: bool
    timed: bool
    faults: Optional["_faults.FaultInjector"]
    observers: tuple

    @classmethod
    def for_run(cls, sim: "Simulator") -> "HookSet":
        obs_on = GATE.enabled
        measure = sim.measure_overhead
        return cls(
            obs_on=obs_on,
            measure=measure,
            timed=obs_on or measure,
            faults=sim._faults,
            observers=tuple(sim.observers),
        )

    @property
    def all_disabled(self) -> bool:
        """True when the loop can take the bare fast path."""
        return not (self.obs_on or self.measure or self.faults or self.observers)


@dataclass
class SimulationResult:
    """Aggregate outcome of one run.

    Attributes:
        end_time: Simulated time reached (µs).
        decisions: Number of global scheduling decisions made.
        switches: Number of times the running partition changed (idle counts
            as a distinct context).
        overhead_ns_total: Wall-clock nanoseconds spent inside
            ``policy.decide`` (only populated with ``measure_overhead=True``).
        overhead_ns_by_second: Wall-clock decide-time per simulated second
            (the Fig. 17 series).
        decide_latencies_ns: Individual decide-call latencies (Table IV),
            collected only with ``measure_overhead=True``.
        deadline_misses: Count of jobs finishing after ``arrival + deadline``.
        metrics: The run's :class:`repro.obs.MetricsRegistry` snapshot, with
            the policy's exact memo counters folded in under ``memo.*``.
            Engine counters (``engine.*``) and the decide-latency histogram
            (``decide.wall_ns``) populate only while :func:`repro.obs.enable`
            is in effect; the ``memo.*`` counters are always exact.
            ``memo_hits`` and friends read through to it, preserving the
            pre-``repro.obs`` attribute API.
    """

    end_time: int
    decisions: int
    switches: int
    overhead_ns_total: int = 0
    overhead_ns_by_second: Dict[int, int] = field(default_factory=dict)
    decide_latencies_ns: List[int] = field(default_factory=list)
    deadline_misses: int = 0
    metrics: Dict[str, object] = field(default_factory=dict)

    @property
    def memo_hits(self) -> int:
        return int(self.metrics.get("memo.hits", 0))

    @property
    def memo_misses(self) -> int:
        return int(self.metrics.get("memo.misses", 0))

    @property
    def memo_evictions(self) -> int:
        return int(self.metrics.get("memo.evictions", 0))

    @property
    def memo_bypassed(self) -> int:
        return int(self.metrics.get("memo.bypassed", 0))

    @property
    def memo_hit_rate(self) -> float:
        lookups = self.memo_hits + self.memo_misses
        return self.memo_hits / lookups if lookups else 0.0

    @property
    def fault_injections(self) -> int:
        """Total injected faults (``faults.total``; 0 when no plan ran)."""
        return int(self.metrics.get("faults.total", 0))

    def rates(self) -> Dict[str, float]:
        seconds = self.end_time / SEC
        return {
            "decisions_per_sec": self.decisions / seconds if seconds else 0.0,
            "switches_per_sec": self.switches / seconds if seconds else 0.0,
        }


class Simulator:
    """Two-level hierarchical scheduling simulator.

    Args:
        system: The validated partition set.
        policy: A policy instance or canonical name
            (see :data:`repro.sim.policies.POLICY_NAMES`).
        seed: Master seed; workload jitter and policy randomness derive
            independent streams from it.
        channel: Optional covert-channel script; required when any task uses
            the ``sender``/``receiver`` behaviours.
        behaviors: Optional overrides of the behaviour registry
            (``{behavior_key: Behavior}``).
        observers: Trace observers to notify.
        local_scheduler_factory: Builds the per-partition local scheduler
            from a live callable — the escape hatch for unregistered,
            process-local schedulers (BLINDER's experiments historically
            plug in here). Mutually exclusive with a non-default
            ``scheduler`` name.
        scheduler: Registered local-scheduler name
            (:func:`repro.sim.registry.register_local_scheduler`):
            ``"fp"`` (default), ``"edf"``, ``"reorder"``, ... — the
            spec-addressable way to select the local scheduler
            (``RunSpec.scheduler`` threads through here). Seeded entries
            (REORDER) receive per-partition streams derived from ``seed``.
            Selecting an EDF-based entry runs the
            :mod:`repro.core.edf` supply/demand vetting pass; the verdict
            lands on :attr:`edf_supply_report` (empty = every partition's
            task set is EDF-feasible under its budget server, so TimeDice's
            budget guarantee carries local deadlines too) and ticks the
            gated ``sched.edf_infeasible`` counter per flagged partition.
        quantum: TimeDice MIN_INV_SIZE when ``policy`` is given by name.
        memoize: When ``policy`` is given by name, whether its TimeDice
            variants reuse schedulability-test outcomes across quanta
            (:class:`repro.core.memo.SchedulabilityMemo`; default on).
            Decision traces are bit-identical either way; the memo's
            counters are surfaced on :class:`SimulationResult`.
        measure_overhead: Record wall-clock latency of every policy decision
            (Table IV / Fig. 17). Off by default — it roughly doubles the
            Python overhead of a run.
        budget_donation: Sec. II-a's optional rule: when the CPU would
            otherwise idle (no *active* partition has ready work), a
            budget-depleted partition with pending work may run on the unused
            budget of a higher-priority active-but-idle partition. This (i)
            curbs the donor's deferred-execution interference and (ii)
            improves responsiveness. Off by default so runs match the strict
            budget model of the analyses; switching it on opens an
            *additional* covert channel (the receiver finishes early whenever
            the sender's bit-0 budget is donated to it), exercised by the
            donation-channel ablation. Deliberate TimeDice IDLE selections
            are honoured (the dice outrank the donation fallback); donation
            fires only when there is genuinely nothing schedulable.
        obs: Optional pre-built :class:`repro.obs.RunObs` scope; one is
            created per simulator when omitted. The scope's registry and
            span buffer collect only while :func:`repro.obs.enable` is in
            effect, and are handed down to the policy/memo via their
            ``attach_obs`` hooks. Its snapshot lands on
            ``SimulationResult.metrics``.
        faults: Optional :class:`repro.faults.FaultPlan`. When omitted, the
            process-ambient plan (the CLI's ``--faults`` flag, see
            :func:`repro.faults.activate_plan`) applies, if any. Null plans
            (zero intensity) are discarded at construction, so attaching one
            is bit-identical to attaching nothing: the fault streams draw
            from RNGs derived independently of the workload and policy
            streams, and the hook sites are skipped entirely without an
            active injector. Exact injection counts land on
            ``SimulationResult.metrics`` under ``faults.*``.
    """

    def __init__(
        self,
        system: System,
        policy: Union[str, GlobalPolicyBase] = "norandom",
        seed: int = 0,
        channel: Optional[ChannelScript] = None,
        behaviors: Optional[Dict[str, Behavior]] = None,
        observers: Sequence[Observer] = (),
        local_scheduler_factory=None,
        scheduler: str = DEFAULT_LOCAL_SCHEDULER,
        quantum: int = DEFAULT_QUANTUM,
        measure_overhead: bool = False,
        budget_donation: bool = False,
        memoize: bool = True,
        obs: Optional["_obs.RunObs"] = None,
        faults: Optional["_faults.FaultPlan"] = None,
    ):
        self.system = system
        # Distinct, process-stable streams derived from the master seed.
        self.workload_rng = random.Random(seed * 2 + 1)
        if isinstance(policy, str):
            policy = make_policy(
                policy,
                system=system,
                seed=seed * 2 + 0x9E3779B9,
                quantum=quantum,
                memoize=memoize,
            )
        self.policy = policy
        self.channel = channel
        registry = default_behaviors(channel)
        if behaviors:
            registry.update(behaviors)
        self.behaviors = registry
        self.observers = list(observers)
        self.measure_overhead = measure_overhead
        self.budget_donation = budget_donation

        # -- observability: per-run scope, policy hand-off, trace capture --
        self.obs = obs if obs is not None else _obs.RunObs(
            label=getattr(self.policy, "name", "run")
        )
        registry = self.obs.registry
        self._m_replenish = registry.counter("engine.events.replenish")
        self._m_arrival = registry.counter("engine.events.arrival")
        self._m_segments = registry.counter("engine.segments")
        self._m_busy_us = registry.counter("engine.busy_us")
        self._m_idle_us = registry.counter("engine.idle_us")
        self._h_decide = registry.histogram("decide.wall_ns")
        attach = getattr(self.policy, "attach_obs", None)
        if attach is not None:
            attach(self.obs)

        # -- fault injection: precedence (explicit plan wins over the ambient
        # --faults one, with a one-time warning on a genuine override) is
        # decided by resolve_fault_plan, shared with RunSpec.normalized() —
        # the engine no longer encodes the rule. A plan with no active
        # (non-null) specs leaves the injector slot empty, so every hook site
        # stays on its fast `is None` path and the run is bit-identical to an
        # unfaulted one.
        plan = _faults.resolve_fault_plan(faults, obs=self.obs)
        self._faults: Optional[_faults.FaultInjector] = None
        if plan is not None:
            injector = _faults.FaultInjector(
                plan, seed, partitions=[p.name for p in system]
            )
            if injector.active:
                injector.attach_obs(self.obs)
                self._faults = injector

        capture = _obs.trace_capture()
        if capture is not None and capture.has_room():
            recorder = SegmentRecorder(limit=capture.segment_limit)
            self.observers.append(recorder)
            capture.register(
                _obs.CapturedRun(
                    label=f"{self.obs.label} seed={seed}",
                    partitions=[p.name for p in system],
                    segments=recorder.segments,
                    obs=self.obs,
                )
            )

        if local_scheduler_factory is not None:
            if scheduler != DEFAULT_LOCAL_SCHEDULER:
                raise ValueError(
                    "pass either scheduler=<registered name> or "
                    "local_scheduler_factory=<callable>, not both "
                    f"(got scheduler={scheduler!r} and a factory)"
                )
            factory = local_scheduler_factory
            entry = None
        else:
            entry = find_local_scheduler(scheduler)
            factory = make_local_scheduler_factory(scheduler, seed)
        self.scheduler = scheduler
        self._runtimes: List[_PartitionRuntime] = [
            _PartitionRuntime(spec, factory(spec)) for spec in system
        ]
        # EDF-aware schedulability vetting: TimeDice's candidate search
        # guarantees partition budgets; with an EDF-based local scheduler the
        # local half of the deadline argument is the supply/demand test.
        self.edf_supply_report: Dict[str, str] = {}
        if entry is not None and entry.edf_based:
            from repro.core.edf import edf_supply_report

            self.edf_supply_report = edf_supply_report(system)
            if self.edf_supply_report:
                self.obs.registry.counter("sched.edf_infeasible").inc(
                    len(self.edf_supply_report)
                )
        self._by_name: Dict[str, _PartitionRuntime] = {
            rt.spec.name: rt for rt in self._runtimes
        }
        for rt in self._runtimes:
            for task in rt.spec.tasks:
                if task.behavior not in self.behaviors:
                    raise ValueError(
                        f"task {task.name} uses behavior {task.behavior!r} but no such "
                        f"behavior is registered (did you forget to pass a channel?)"
                    )

        self._queue = EventQueue()
        self._jobs: Dict[int, Job] = {}
        self.now = 0
        self._last_running: Optional[str] = "__none__"
        self._result = SimulationResult(end_time=0, decisions=0, switches=0)
        self._primed = False
        # A scheduling decision whose slice was clipped by a run_until pause
        # boundary and is still live: the next run_until continues it instead
        # of consulting the policy again (see run_until's docstring).
        self._carry: Optional[PolicyChoice] = None
        # The hook chain of the run_until call in flight (see HookSet);
        # refreshed at the top of every run_until call.
        self._hooks: Optional[HookSet] = None

    @classmethod
    def from_spec(
        cls,
        spec,
        *,
        observers: Sequence[Observer] = (),
        behaviors: Optional[Dict[str, Behavior]] = None,
        local_scheduler_factory=None,
        obs: Optional["_obs.RunObs"] = None,
    ) -> "Simulator":
        """Build a simulator from a :class:`repro.sim.config.RunSpec`.

        The spec is :meth:`~repro.sim.config.RunSpec.normalized` first, so
        the ambient-fault-plan question is settled before construction and
        the simulator built here is exactly the one the spec's
        ``content_hash()`` names. Non-serializable attachments — observer
        objects, behaviour instances, ad-hoc local-scheduler factories —
        are not part of a spec and are passed alongside it; they never
        affect cache identity. Registered local schedulers travel *inside*
        the spec (``spec.scheduler``); combining a non-default one with an
        explicit ``local_scheduler_factory`` is rejected as ambiguous.

        When ``spec.engine == "batch"`` the run is routed to the vectorized
        backend (:mod:`repro.sim.batch`) and the return value is a
        :class:`~repro.sim.batch.BatchRunAdapter` — same ``run_until``
        surface, bit-identical results, but single-shot (no pause/resume).
        Specs or attachments the batch engine cannot represent (budget
        donation, overhead measurement, a non-default or unsupported
        scheduler/policy, custom behaviours/schedulers/obs, an active
        ``--trace-out`` capture) fall back to the scalar engine here,
        ticking the gated ``batch.fallback`` counter plus one reasoned
        companion (``batch.fallback.<reason>``) so ``repro stats`` can say
        why.
        """
        spec = spec.normalized()
        if spec.engine == "batch":
            from repro.sim.batch import BATCH_METRICS, BatchRunAdapter, batch_compatible

            reason = batch_compatible(spec)
            if reason is None:
                if behaviors is not None:
                    reason = "custom_behaviors"
                elif local_scheduler_factory is not None:
                    reason = "custom_scheduler"
                elif obs is not None:
                    reason = "obs_scope"
                elif _obs.trace_capture() is not None:
                    # The batch backend records no per-run segments, so an
                    # active --trace-out capture would come back empty;
                    # the scalar engine self-registers and traces.
                    reason = "obs_capture"
            if reason is None:
                return BatchRunAdapter(spec, observers=observers)
            BATCH_METRICS.counter("batch.fallback").inc()
            BATCH_METRICS.counter(f"batch.fallback.{reason}").inc()
        return cls(
            spec.build_system(),
            policy=spec.policy,
            seed=spec.seed,
            channel=spec.channel_script(),
            behaviors=behaviors,
            observers=observers,
            local_scheduler_factory=local_scheduler_factory,
            scheduler=spec.scheduler,
            quantum=spec.effective_quantum,
            measure_overhead=spec.measure_overhead,
            budget_donation=spec.budget_donation,
            memoize=spec.memoize,
            obs=obs,
            faults=spec.fault_plan(),
        )

    # ----------------------------------------------------------------- setup

    def _prime(self) -> None:
        """Enqueue the first replenishments and arrivals."""
        for index, rt in enumerate(self._runtimes):
            self._queue.push(Event(rt.spec.period, EventKind.REPLENISH, index))
            for task_index, task in enumerate(rt.spec.tasks):
                self._queue.push(
                    Event(task.offset, EventKind.ARRIVAL, (index, task_index))
                )
        self._primed = True

    # ---------------------------------------------------------------- events

    def _handle_replenish(self, event: Event) -> None:
        rt = self._runtimes[event.payload]
        budget = rt.spec.budget
        if self._faults is not None:
            budget = self._faults.perturb_budget(rt.spec.name, event.time, budget)
        rt.remaining_budget = budget
        rt.last_replenishment = event.time
        rt.local.on_replenish(event.time)
        self._queue.push(
            Event(event.time + rt.spec.period, EventKind.REPLENISH, event.payload)
        )

    def _handle_arrival(self, event: Event) -> None:
        part_index, task_index = event.payload
        rt = self._runtimes[part_index]
        task = rt.spec.tasks[task_index]
        behavior = self.behaviors[task.behavior]
        demand = behavior.execution_time(task, event.time, self.workload_rng)
        demand = max(1, min(demand, task.wcet))
        if self._faults is not None:
            # After the WCET clamp: an overrun fault is precisely a job
            # exceeding its declared WCET, which nominal behaviours cannot do.
            demand = self._faults.perturb_demand(
                rt.spec.name, task, event.time, demand
            )
        job = Job(task=task, partition=rt.spec.name, arrival=event.time, demand=demand)
        rt.local.on_arrival(job, event.time)
        gap = behavior.inter_arrival(task, event.time, self.workload_rng)
        gap = max(gap, 1)
        if self._faults is not None:
            gap = self._faults.perturb_gap(rt.spec.name, task, event.time, gap)
        self._queue.push(Event(event.time + gap, EventKind.ARRIVAL, event.payload))

    # -------------------------------------------------------------- notifier

    def _emit_segment(self, start: int, end: int, partition: Optional[str], task: Optional[str]) -> None:
        if end <= start:
            return
        hooks = self._hooks
        if hooks is None or hooks.obs_on:
            self._m_segments.inc()
            if partition is None:
                self._m_idle_us.inc(end - start)
            else:
                self._m_busy_us.inc(end - start)
        key = partition or "__idle__"
        if key != self._last_running:
            if self._last_running != "__none__":
                self._result.switches += 1
            self._last_running = key
        for observer in self.observers:
            observer.on_segment(start, end, partition, task)

    def _emit_completion(self, job: Job) -> None:
        record = JobRecord(
            task=job.task.name,
            partition=job.partition,
            arrival=job.arrival,
            started_at=job.started_at,
            finished_at=job.finished_at,
            demand=job.demand,
        )
        if job.finished_at - job.arrival > job.task.deadline:
            self._result.deadline_misses += 1
        for observer in self.observers:
            observer.on_job_complete(record)

    # ------------------------------------------------------------- donation

    def _find_donation(self):
        """The Sec. II-a fallback for an otherwise-idle CPU.

        Returns ``(recipient, donor)`` — the highest-priority budget-depleted
        partition with ready work, paired with the highest-priority partition
        strictly above it that still holds unused budget — or None when no
        such pair exists. Only called when no active partition has ready
        work, so running the recipient delays nobody; consuming the donor's
        budget can only *reduce* future interference.
        """
        for index, rt in enumerate(self._runtimes):  # decreasing priority
            if rt.remaining_budget == 0 and rt.local.has_ready(self.now):
                for donor in self._runtimes[:index]:
                    if donor.remaining_budget > 0:
                        return rt, donor
        return None

    def _run_donated(self, recipient, donor, duration: int) -> None:
        """Run the recipient's job on the donor's budget for ``duration`` µs."""
        job = recipient.local.pick(self.now)
        if duration <= 0:  # pragma: no cover - all caps are positive here
            raise RuntimeError("donation slice collapsed to zero")
        if job.started_at is None:
            job.started_at = self.now
        job.remaining -= duration
        donor.remaining_budget -= duration
        start = self.now
        self.now += duration
        recipient.local.on_executed(job, duration, self.now)
        self._emit_segment(start, self.now, recipient.spec.name, job.task.name)
        if job.remaining == 0:
            job.finished_at = self.now
            recipient.local.on_complete(job, self.now)
            self._emit_completion(job)

    # ------------------------------------------------------------- main loop

    def _enforce_server_semantics(self) -> None:
        """Apply per-partition budget-discharge rules at a scheduling point.

        A polling server forfeits leftover budget the moment it has no
        pending work; deferrable (the default) and periodic servers retain
        it (the periodic server instead *drains* budget by idling on the CPU
        when scheduled without work — handled in the run loop).
        """
        for rt in self._runtimes:
            if (
                rt.spec.server == "polling"
                and rt.remaining_budget > 0
                and not rt.local.has_ready(self.now)
            ):
                rt.remaining_budget = 0

    def snapshot(self) -> SystemState:
        """The current :class:`SystemState` (also useful in tests)."""
        states = [
            PartitionState(
                name=rt.spec.name,
                period=rt.spec.period,
                max_budget=rt.spec.budget,
                priority=rt.spec.priority,
                remaining_budget=rt.remaining_budget,
                last_replenishment=rt.last_replenishment,
                ready=(
                    rt.local.has_ready(self.now)
                    or (rt.spec.server == "periodic" and rt.remaining_budget > 0)
                ),
            )
            for rt in self._runtimes
        ]
        return SystemState(self.now, states)

    def _any_active_ready(self) -> bool:
        """Whether ``snapshot().active_ready()`` would be non-empty, without
        the cost of building a snapshot (used on the carry path too, where no
        snapshot exists)."""
        for rt in self._runtimes:
            if rt.remaining_budget > 0 and (
                rt.local.has_ready(self.now) or rt.spec.server == "periodic"
            ):
                return True
        return False

    def _natural_end(self, next_event, max_slice, *duration_caps):
        """Absolute end of the current slice ignoring the ``run_until`` pause
        boundary: the next event, the policy's slice bound, and any duration
        caps (remaining budget, job demand). None when genuinely unbounded
        (empty queue, no other cap)."""
        end = next_event
        if max_slice is not None:
            cap = self.now + max(1, max_slice)
            end = cap if end is None else min(end, cap)
        for cap in duration_caps:
            capped = self.now + cap
            end = capped if end is None else min(end, capped)
        return end

    def _clip(self, natural: Optional[int], t_end: int, choice: PolicyChoice) -> int:
        """Clip a slice's natural end to the pause boundary.

        When the boundary — not one of the slice's own caps — is what binds,
        the live decision is remembered in ``self._carry`` (with its slice
        allowance reduced by what this segment consumes) so the next
        ``run_until`` continues it instead of consulting the policy again.
        """
        if natural is not None and natural <= t_end:
            return natural
        remaining = None
        if choice.max_slice is not None:
            remaining = max(1, choice.max_slice) - (t_end - self.now)
        self._carry = PolicyChoice(choice.partition, remaining)
        return t_end

    def _deliver_events(self, hooks: HookSet) -> None:
        """Step 1: pop and dispatch every event due at the current time."""
        if hooks.obs_on:
            dispatch_t0 = _wall.perf_counter_ns()
            dispatched = 0
            for event in self._queue.pop_due(self.now):
                dispatched += 1
                if event.kind == EventKind.REPLENISH:
                    self._m_replenish.inc()
                    self._handle_replenish(event)
                else:
                    self._m_arrival.inc()
                    self._handle_arrival(event)
            if dispatched:
                self.obs.spans.record(
                    "engine.dispatch",
                    dispatch_t0,
                    _wall.perf_counter_ns() - dispatch_t0,
                    sim_ts=self.now,
                    cat="engine",
                )
        else:
            for event in self._queue.pop_due(self.now):
                if event.kind == EventKind.REPLENISH:
                    self._handle_replenish(event)
                else:
                    self._handle_arrival(event)

    def _decide(self, hooks: HookSet) -> PolicyChoice:
        """Step 2: consult the global policy (clocked only when required)."""
        result = self._result
        state = self.snapshot()
        if hooks.timed:
            t0 = _wall.perf_counter_ns()
            choice = self.policy.decide(state)
            elapsed = _wall.perf_counter_ns() - t0
            if hooks.measure:
                result.overhead_ns_total += elapsed
                second = self.now // SEC
                result.overhead_ns_by_second[second] = (
                    result.overhead_ns_by_second.get(second, 0) + elapsed
                )
                result.decide_latencies_ns.append(elapsed)
            if hooks.obs_on:
                self._h_decide.observe(elapsed)
                self.obs.spans.record(
                    "decide", t0, elapsed, sim_ts=self.now, cat="scheduler"
                )
        else:
            choice = self.policy.decide(state)
        result.decisions += 1
        for observer in hooks.observers:
            observer.on_decision(self.now, choice.partition)
        return choice

    def _execute_slice(
        self,
        choice: PolicyChoice,
        next_event: Optional[int],
        t_end: int,
    ) -> None:
        """Step 3: act on the decision for the longest admissible slice.

        Exactly one of the four sub-paths runs: donation/idle (no partition
        chosen), periodic-server budget drain, defensive bounded idling for
        an unrunnable selection, or the normal execution slice. Each path
        advances ``self.now`` and leaves ``self._carry`` set when the pause
        boundary — not a real cap — ended the slice.
        """
        if choice.partition is None:
            donation = None
            if self.budget_donation and not self._any_active_ready():
                donation = self._find_donation()
            if donation is not None:
                recipient, donor = donation
                job = recipient.local.pick(self.now)
                natural = self._natural_end(
                    next_event,
                    choice.max_slice,
                    donor.remaining_budget,
                    job.remaining,
                )
                end = self._clip(natural, t_end, choice)
                self._run_donated(recipient, donor, end - self.now)
                return
            end = self._clip(
                self._natural_end(next_event, choice.max_slice), t_end, choice
            )
            self._emit_segment(self.now, end, None, None)
            self.now = end
            return

        rt = self._by_name[choice.partition]
        job = rt.local.pick(self.now)
        if job is None and rt.spec.server == "periodic" and rt.remaining_budget > 0:
            # A periodic server occupies the CPU and drains its budget
            # even without work — that determinism is its whole point.
            natural = self._natural_end(
                next_event, choice.max_slice, rt.remaining_budget
            )
            end = self._clip(natural, t_end, choice)
            duration = end - self.now
            rt.remaining_budget -= duration
            start = self.now
            self.now = end
            self._emit_segment(start, self.now, rt.spec.name, None)
            return
        if job is None or rt.remaining_budget <= 0:
            # Defensive: a policy should never select a partition that
            # cannot run; treat it as (bounded) idling rather than crash.
            end = self._clip(
                self._natural_end(next_event, choice.max_slice), t_end, choice
            )
            self._emit_segment(self.now, end, None, None)
            self.now = end
            return

        natural = self._natural_end(
            next_event, choice.max_slice, rt.remaining_budget, job.remaining
        )
        end = self._clip(natural, t_end, choice)
        duration = end - self.now
        if duration <= 0:  # pragma: no cover - guarded by checks above
            raise RuntimeError("scheduling slice collapsed to zero")

        if job.started_at is None:
            job.started_at = self.now
        job.remaining -= duration
        rt.remaining_budget -= duration
        start = self.now
        self.now = end
        rt.local.on_executed(job, duration, self.now)
        self._emit_segment(start, self.now, rt.spec.name, job.task.name)
        if job.remaining == 0:
            job.finished_at = self.now
            rt.local.on_complete(job, self.now)
            self._emit_completion(job)

    def _account(self) -> SimulationResult:
        """Step 4: fold the run's exact and gated metrics into the result."""
        result = self._result
        result.end_time = self.now
        # The memo counters come from the policy's exact MemoStats
        # accumulator (not gated counters), so they are correct whether or
        # not obs is on.
        metrics = self.obs.registry.snapshot()
        memo_stats = getattr(self.policy, "memo_stats", None)
        if memo_stats is not None:
            metrics["memo.hits"] = memo_stats.hits
            metrics["memo.misses"] = memo_stats.misses
            metrics["memo.evictions"] = memo_stats.evictions
            metrics["memo.bypassed"] = memo_stats.bypassed
        # Same overwrite discipline for the injector's exact counts: correct
        # across repeated run_until calls, gate on or off.
        if self._faults is not None:
            metrics.update(self._faults.metrics())
        result.metrics = metrics
        return result

    def run_until(self, t_end: int) -> SimulationResult:
        """Advance the simulation to absolute time ``t_end`` (µs).

        Each iteration is the four-step machine ``_deliver_events`` →
        ``_decide`` → ``_execute_slice`` → (on exit) ``_account``, driven by
        a :class:`HookSet` precomputed for this call.

        Runs may be resumed by calling ``run_until`` again with a later
        time, and a paused-and-resumed run is **bit-identical** to the
        uninterrupted one for every policy, randomized ones included: the
        horizon is peeked before the policy is consulted, and when the pause
        boundary cuts an execution slice short the live decision is carried
        across the pause — the policy is not consulted again mid-slice, so
        ``decisions`` is not inflated and no extra RNG draw is burnt.
        """
        if not self._primed:
            self._prime()
        hooks = HookSet.for_run(self)
        self._hooks = hooks
        queue = self._queue
        while self.now < t_end:
            carried = self._carry
            self._carry = None
            if carried is not None:
                # Continue the slice a previous run_until clipped. No events
                # can be due (a carry exists only when the next event lies
                # strictly beyond the old boundary) and server semantics were
                # already enforced at the decision's real scheduling point —
                # consulting the policy again here is exactly the wart this
                # path removes.
                choice = carried
                next_event = queue.peek_time()
            else:
                self._deliver_events(hooks)
                self._enforce_server_semantics()
                # Peek the horizon *before* consulting the policy: a decision
                # for a zero-length slice would inflate `decisions` and burn
                # an RNG draw without ever being acted on.
                next_event = queue.peek_time()
                horizon = t_end if next_event is None else min(next_event, t_end)
                if horizon <= self.now:  # pragma: no cover - queue head is
                    break  # always in the future once due events are popped
                choice = self._decide(hooks)
            self._execute_slice(choice, next_event, t_end)
        result = self._account()
        if _events.EVENTS.active:
            _events.emit(
                "engine.run",
                label=self.obs.label,
                end_time=result.end_time,
                decisions=result.decisions,
                deadline_misses=result.deadline_misses,
            )
        return result

    def _run_for(self, duration: float, unit: int, what: str) -> SimulationResult:
        if not duration > 0:
            raise ValueError(f"duration must be positive, got {duration!r} {what}")
        delta = round(duration * unit)
        if delta <= 0:
            raise ValueError(
                f"duration {duration!r} {what} rounds to zero whole microseconds"
            )
        return self.run_until(self.now + delta)

    def run_for_ms(self, duration_ms: float) -> SimulationResult:
        """Run for ``duration_ms`` simulated milliseconds from the current time.

        The duration must be positive and amount to at least one whole
        microsecond after rounding (the engine's clock unit).
        """
        return self._run_for(duration_ms, MS, "ms")

    def run_for_seconds(self, duration_s: float) -> SimulationResult:
        """Run for ``duration_s`` simulated seconds from the current time.

        Same validation and whole-µs rounding as :meth:`run_for_ms`.
        """
        return self._run_for(duration_s, SEC, "s")
