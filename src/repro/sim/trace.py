"""Simulation observers: traces, response times, execution vectors, counters.

Observers subscribe to the engine's three notification streams —

- ``on_segment(start, end, partition, task)`` whenever a contiguous slice of
  CPU time ends (``partition is None`` for idle slices),
- ``on_job_complete(record)`` whenever a job finishes,
- ``on_decision(t, chosen)`` whenever the global policy is consulted —

and aggregate them on the fly, so that multi-minute simulated runs do not
need to retain millions of raw events unless a full
:class:`SegmentRecorder` is explicitly attached.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro._time import SEC, to_ms


@dataclass(frozen=True)
class Segment:
    """A maximal contiguous execution slice."""

    start: int
    end: int
    partition: Optional[str]  # None = idle
    task: Optional[str]

    @property
    def duration(self) -> int:
        return self.end - self.start


@dataclass(frozen=True)
class JobRecord:
    """Completion record of one job."""

    task: str
    partition: str
    arrival: int
    started_at: int
    finished_at: int
    demand: int

    @property
    def response_time(self) -> int:
        return self.finished_at - self.arrival


class Observer:
    """Base observer; all hooks optional."""

    def on_segment(
        self, start: int, end: int, partition: Optional[str], task: Optional[str]
    ) -> None:
        pass

    def on_job_complete(self, record: JobRecord) -> None:
        pass

    def on_decision(self, t: int, chosen: Optional[str]) -> None:
        pass


class SegmentRecorder(Observer):
    """Records every execution segment (use on short runs only).

    ``limit`` guards against unbounded memory on accidental long runs.
    """

    def __init__(self, limit: Optional[int] = None, merge: bool = True):
        self.segments: List[Segment] = []
        self.limit = limit
        self.merge = merge

    def on_segment(
        self, start: int, end: int, partition: Optional[str], task: Optional[str]
    ) -> None:
        if self.limit is not None and len(self.segments) >= self.limit:
            return
        if (
            self.merge
            and self.segments
            and self.segments[-1].end == start
            and self.segments[-1].partition == partition
            and self.segments[-1].task == task
        ):
            last = self.segments[-1]
            self.segments[-1] = Segment(last.start, end, partition, task)
            return
        self.segments.append(Segment(start, end, partition, task))

    def partition_timeline(self) -> List[Tuple[float, float, str]]:
        """(start_ms, end_ms, partition-or-'idle') rows for trace rendering."""
        return [
            (to_ms(s.start), to_ms(s.end), s.partition or "idle") for s in self.segments
        ]

    def busy_time(self, partition: str, start: int, end: int) -> int:
        """CPU time ``partition`` received within [start, end)."""
        total = 0
        for segment in self.segments:
            if segment.partition != partition:
                continue
            lo = max(segment.start, start)
            hi = min(segment.end, end)
            if hi > lo:
                total += hi - lo
        return total

    def to_csv(self, path) -> int:
        """Write the trace as ``start_us,end_us,partition,task`` rows.

        Returns the number of segments written. Idle slices are kept (empty
        partition/task columns) so the file accounts for the full timeline.
        """
        import csv

        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["start_us", "end_us", "partition", "task"])
            for segment in self.segments:
                writer.writerow(
                    [
                        segment.start,
                        segment.end,
                        segment.partition or "",
                        segment.task or "",
                    ]
                )
        return len(self.segments)

    @staticmethod
    def from_csv(path) -> "SegmentRecorder":
        """Reload a trace written by :meth:`to_csv`."""
        import csv

        recorder = SegmentRecorder(merge=False)
        with open(path, newline="") as handle:
            reader = csv.DictReader(handle)
            for row in reader:
                recorder.segments.append(
                    Segment(
                        start=int(row["start_us"]),
                        end=int(row["end_us"]),
                        partition=row["partition"] or None,
                        task=row["task"] or None,
                    )
                )
        return recorder


class ResponseTimeRecorder(Observer):
    """Collects per-task response times (µs).

    Args:
        task_names: Restrict to these tasks; None records all tasks.
    """

    def __init__(self, task_names: Optional[Sequence[str]] = None):
        self.task_filter = set(task_names) if task_names is not None else None
        self.records: Dict[str, List[JobRecord]] = defaultdict(list)

    def on_job_complete(self, record: JobRecord) -> None:
        if self.task_filter is None or record.task in self.task_filter:
            self.records[record.task].append(record)

    def response_times(self, task: str) -> np.ndarray:
        """Response times of ``task`` in µs, in completion order."""
        return np.array([r.response_time for r in self.records.get(task, [])], dtype=np.int64)

    def response_times_ms(self, task: str) -> np.ndarray:
        return self.response_times(task) / 1000.0

    def empirical_wcrt(self, task: str) -> Optional[int]:
        times = self.response_times(task)
        return int(times.max()) if times.size else None

    def summary(self, task: str) -> Dict[str, float]:
        """avg/std/max in ms — the Table III row format."""
        times = self.response_times_ms(task)
        if not times.size:
            return {"count": 0, "avg": float("nan"), "std": float("nan"), "max": float("nan")}
        return {
            "count": int(times.size),
            "avg": float(times.mean()),
            "std": float(times.std()),
            "max": float(times.max()),
        }


class ExecutionVectorRecorder(Observer):
    """Builds the receiver's execution vectors online (Sec. III-d).

    The observation window of length ``window`` is divided into ``m`` micro
    intervals; element :math:`v_i` of a window's vector is 1 iff the observed
    partition executed at any point during the :math:`i`-th interval. Windows
    are aligned to ``start`` (the channel's agreed start time).
    """

    def __init__(self, partition: str, window: int, m: int = 150, start: int = 0):
        if window <= 0 or m <= 0:
            raise ValueError("window and m must be positive")
        if window % m != 0:
            raise ValueError(
                f"window {window} must be divisible into m={m} micro intervals"
            )
        self.partition = partition
        self.window = window
        self.m = m
        self.start = start
        self.micro = window // m
        self._vectors: Dict[int, np.ndarray] = {}

    def on_segment(
        self, start: int, end: int, partition: Optional[str], task: Optional[str]
    ) -> None:
        if partition != self.partition or end <= self.start:
            return
        start = max(start, self.start)
        first_window = (start - self.start) // self.window
        last_window = (end - 1 - self.start) // self.window
        for index in range(first_window, last_window + 1):
            window_start = self.start + index * self.window
            lo = max(start, window_start) - window_start
            hi = min(end, window_start + self.window) - window_start
            if hi <= lo:
                continue
            vector = self._vectors.get(index)
            if vector is None:
                vector = np.zeros(self.m, dtype=np.uint8)
                self._vectors[index] = vector
            vector[lo // self.micro : (hi - 1) // self.micro + 1] = 1

    def vector(self, index: int) -> np.ndarray:
        """The execution vector of window ``index`` (all-zero if never ran)."""
        return self._vectors.get(index, np.zeros(self.m, dtype=np.uint8)).copy()

    def matrix(self, n_windows: int, first: int = 0) -> np.ndarray:
        """Vectors of windows [first, first + n_windows) stacked row-wise."""
        return np.stack([self.vector(first + i) for i in range(n_windows)])


class BudgetAccountant(Observer):
    """Tracks CPU time served to each partition per replenishment period.

    The schedulability-preservation property tests use this: a partition with
    saturating demand must receive exactly its budget every period, TimeDice
    or not.
    """

    def __init__(self, periods: Dict[str, int]):
        self.periods = dict(periods)
        self.served: Dict[str, Dict[int, int]] = {name: defaultdict(int) for name in periods}

    def on_segment(
        self, start: int, end: int, partition: Optional[str], task: Optional[str]
    ) -> None:
        if partition is None or partition not in self.periods:
            return
        period = self.periods[partition]
        buckets = self.served[partition]
        t = start
        while t < end:
            index = t // period
            boundary = (index + 1) * period
            slice_end = min(end, boundary)
            buckets[index] += slice_end - t
            t = slice_end

    def served_in_period(self, partition: str, index: int) -> int:
        return self.served[partition].get(index, 0)

    def min_served(self, partition: str, first: int, last: int) -> int:
        """Minimum service over period indices [first, last]."""
        return min(
            self.served_in_period(partition, index) for index in range(first, last + 1)
        )


class DecisionCounter(Observer):
    """Counts scheduling decisions and partition switches (Table V)."""

    def __init__(self) -> None:
        self.decisions = 0
        self.switches = 0
        self._last: Optional[str] = "__none__"

    def on_decision(self, t: int, chosen: Optional[str]) -> None:
        self.decisions += 1

    def on_segment(
        self, start: int, end: int, partition: Optional[str], task: Optional[str]
    ) -> None:
        key = partition or "__idle__"
        if key != self._last:
            if self._last != "__none__":
                self.switches += 1
            self._last = key

    def rates(self, sim_time: int) -> Dict[str, float]:
        """Decisions and switches per simulated second."""
        seconds = sim_time / SEC
        if seconds <= 0:
            return {"decisions_per_sec": 0.0, "switches_per_sec": 0.0}
        return {
            "decisions_per_sec": self.decisions / seconds,
            "switches_per_sec": self.switches / seconds,
        }
