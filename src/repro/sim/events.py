"""Event queue for the discrete-event engine.

Only two event kinds need to be *scheduled ahead of time*: budget
replenishments (strictly periodic per partition) and job arrivals (the next
arrival is enqueued when the current one fires). Job completions, budget
depletions, and quantum expiries are *derived* inside the run loop — they
depend on who is executing, so the engine computes them as caps on the
current execution slice rather than as queued events.

Events at the same timestamp are delivered in insertion order per kind, with
replenishments before arrivals (a job arriving exactly at a replenishment
boundary must see the fresh budget, matching how a kernel's timer handler
would order the two).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from enum import IntEnum
from typing import Any, List, Optional, Tuple


class EventKind(IntEnum):
    """Event kinds; the integer value is the same-timestamp delivery order."""

    REPLENISH = 0
    ARRIVAL = 1


@dataclass(frozen=True)
class Event:
    """One scheduled event.

    ``payload`` is a partition index for REPLENISH events and a
    ``(partition_index, task_index)`` pair for ARRIVAL events.
    """

    time: int
    kind: EventKind
    payload: Any


class EventQueue:
    """A stable min-heap of events keyed by (time, kind, insertion order)."""

    def __init__(self) -> None:
        self._heap: List[Tuple[int, int, int, Event]] = []
        self._counter = itertools.count()

    def push(self, event: Event) -> None:
        if event.time < 0:
            raise ValueError(f"event time must be non-negative, got {event.time}")
        heapq.heappush(
            self._heap, (event.time, int(event.kind), next(self._counter), event)
        )

    def peek_time(self) -> Optional[int]:
        """Timestamp of the earliest pending event, or None when empty."""
        return self._heap[0][0] if self._heap else None

    def pop_due(self, now: int) -> List[Event]:
        """Pop and return every event with ``time <= now``, in delivery order."""
        due: List[Event] = []
        while self._heap and self._heap[0][0] <= now:
            due.append(heapq.heappop(self._heap)[3])
        return due

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
