"""Global (partition-level) scheduling policies.

- :class:`FixedPriorityPolicy` — NoRandom: the default LITMUS^RT behaviour;
  the highest-priority active partition runs until the next scheduling event.
- :class:`TimeDicePolicy` — wraps :class:`repro.core.TimeDice`; re-randomizes
  every quantum (MIN_INV_SIZE).
- :class:`TDMAPolicy` — static table-driven partitioning in the spirit of
  ARINC 653: a cyclic slot table built offline guarantees each partition its
  budget every period; the CPU idles in a slot whose owner has no work
  (non-work-conserving — this is what removes the covert channel at the cost
  of utilization, Sec. III-h).

All policies share one interface: :meth:`decide` maps a
:class:`~repro.core.state.SystemState` snapshot to a :class:`PolicyChoice`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.selection import (
    InverseUtilizationSelector,
    Selector,
    UniformSelector,
    WeightedUtilizationSelector,
)
from repro.core.memo import DEFAULT_MEMO_SIZE
from repro.core.state import SystemState
from repro.core.timedice import DEFAULT_QUANTUM, TimeDice
from repro.model.system import System
from repro.sim.registry import get_global_policy, register_global_policy


@dataclass
class PolicyChoice:
    """One global scheduling decision.

    Attributes:
        partition: Name of the partition to run, or None to idle.
        max_slice: Upper bound (µs) on how long the choice may run before the
            policy must be consulted again; None means "until the next
            scheduling event" (task arrival/completion, budget depletion,
            replenishment).
    """

    partition: Optional[str]
    max_slice: Optional[int] = None


class GlobalPolicyBase:
    """Interface for global scheduling policies."""

    #: Identifier used in experiment outputs.
    name = "abstract"

    def decide(self, state: SystemState) -> PolicyChoice:
        raise NotImplementedError


class FixedPriorityPolicy(GlobalPolicyBase):
    """NoRandom: always run the highest-priority active ready partition."""

    name = "norandom"

    def decide(self, state: SystemState) -> PolicyChoice:
        ready = state.active_ready()
        if not ready:
            return PolicyChoice(None)
        return PolicyChoice(ready[0].name)


class TimeDicePolicy(GlobalPolicyBase):
    """TimeDice-enabled global scheduling (Sec. IV / Sec. V-A).

    The selected partition holds the CPU for at most one quantum; then the
    dice are rolled again. ``memoize`` (default on) reuses schedulability
    outcomes across quanta via :class:`repro.core.memo.SchedulabilityMemo`;
    decisions are bit-identical either way.
    """

    def __init__(
        self,
        selector: Optional[Selector] = None,
        quantum: int = DEFAULT_QUANTUM,
        seed: Optional[int] = None,
        rng: Optional[random.Random] = None,
        allow_idle: bool = True,
        memoize: bool = True,
        memo_size: int = DEFAULT_MEMO_SIZE,
    ):
        self.scheduler = TimeDice(
            selector=selector,
            quantum=quantum,
            allow_idle=allow_idle,
            seed=seed,
            rng=rng,
            memoize=memoize,
            memo_size=memo_size,
        )
        self.name = f"timedice-{self.scheduler.selector.name}"

    def attach_obs(self, run_obs) -> None:
        """Engine hand-off of the run's :class:`repro.obs.RunObs` scope."""
        self.scheduler.attach_obs(run_obs)

    def decide(self, state: SystemState) -> PolicyChoice:
        decision = self.scheduler.decide(state)
        return PolicyChoice(decision.partition_name, max_slice=decision.quantum)

    @property
    def total_schedulability_tests(self) -> int:
        return self.scheduler.total_schedulability_tests

    @property
    def memo_stats(self):
        """The memo's :class:`~repro.core.memo.MemoStats` (None if disabled)."""
        return self.scheduler.memo_stats


@dataclass(frozen=True)
class TDMASlot:
    """One slot of the static table: [start, end) owned by ``partition``."""

    start: int
    end: int
    partition: str


class TDMAUnschedulableError(ValueError):
    """The partition set cannot be served by any static table.

    The message names the offending partition, its (and the set's)
    utilization, and summarizes the slot table built so far, so the failure
    is actionable without re-running construction under a debugger.
    """


class TDMAPolicy(GlobalPolicyBase):
    """Static cyclic table-driven partitioning (ARINC 653 style).

    The table is the fixed-priority schedule of "budget jobs" — each
    partition demanding exactly :math:`B_i` at every multiple of :math:`T_i`
    — over one hyperperiod. If every budget job completes within its period,
    the table guarantees each partition its full budget per period
    (Definition 1); otherwise the set is statically unschedulable and
    construction raises :class:`TDMAUnschedulableError`.

    At run time, only the slot owner may execute in a slot; the CPU idles if
    the owner has no work. No two partitions are ever *active in the same
    slot*, which removes the algorithmic covert channel entirely (at the
    utilization cost the paper discusses).
    """

    name = "tdma"

    def __init__(self, system: System):
        self.system = system
        self.hyperperiod = system.hyperperiod
        self.slots = self._build_table(system)

    @staticmethod
    def _diagnostics(system: System, partition, slots: List[TDMASlot]) -> str:
        """The shared tail of every unschedulability message: utilizations
        plus a summary of the slot table built before the conflict."""
        total = sum(p.utilization for p in system)
        tail = ", ".join(
            f"[{s.start},{s.end})->{s.partition}" for s in slots[-4:]
        )
        if len(slots) > 4:
            tail = f"..., {tail}"
        return (
            f"(partition utilization {partition.utilization:.3f}, "
            f"set total {total:.3f} over {len(list(system))} partition(s); "
            f"table so far: {len(slots)} slot(s)"
            + (f" {tail}" if slots else "")
            + ")"
        )

    @staticmethod
    def _build_table(system: System) -> List[TDMASlot]:
        hyper = system.hyperperiod
        remaining = {p.name: 0 for p in system}
        deadline = {p.name: 0 for p in system}
        # Replenishment instants within one hyperperiod.
        instants = sorted(
            {k * p.period for p in system for k in range(hyper // p.period)} | {hyper}
        )
        slots: List[TDMASlot] = []
        t = 0
        index = 0
        while t < hyper:
            while index < len(instants) and instants[index] <= t:
                for p in system:
                    if instants[index] % p.period == 0:
                        if remaining[p.name] > 0:
                            raise TDMAUnschedulableError(
                                f"partition {p.name!r} cannot receive "
                                f"{p.budget}us every {p.period}us in any "
                                f"static table: {remaining[p.name]}us of its "
                                f"budget is still unserved at its "
                                f"replenishment t={instants[index]}us "
                                + TDMAPolicy._diagnostics(system, p, slots)
                            )
                        remaining[p.name] = p.budget
                        deadline[p.name] = instants[index] + p.period
                index += 1
            next_instant = instants[index] if index < len(instants) else hyper
            runnable = [p for p in system if remaining[p.name] > 0]
            if not runnable:
                t = next_instant
                continue
            owner = runnable[0]  # system order == decreasing priority
            duration = min(next_instant - t, remaining[owner.name])
            if t + duration > deadline[owner.name]:
                raise TDMAUnschedulableError(
                    f"partition {owner.name!r} misses its budget deadline in "
                    f"the static table: its slot would run to t={t + duration}us "
                    f"but its budget ({owner.budget}us every {owner.period}us) "
                    f"is due by t={deadline[owner.name]}us "
                    + TDMAPolicy._diagnostics(system, owner, slots)
                )
            slots.append(TDMASlot(t, t + duration, owner.name))
            remaining[owner.name] -= duration
            t += duration
        if any(value > 0 for value in remaining.values()):
            short = next(p for p in system if remaining[p.name] > 0)
            raise TDMAUnschedulableError(
                f"partition {short.name!r} has {remaining[short.name]}us of "
                f"unserved budget ({short.budget}us every {short.period}us) at "
                f"the end of the {hyper}us hyperperiod "
                + TDMAPolicy._diagnostics(system, short, slots)
            )
        return slots

    def slot_at(self, t: int) -> Tuple[Optional[TDMASlot], int]:
        """The slot containing ``t`` (None for idle gaps) and time to its end."""
        phase = t % self.hyperperiod
        lo, hi = 0, len(self.slots)
        while lo < hi:
            mid = (lo + hi) // 2
            if self.slots[mid].end <= phase:
                lo = mid + 1
            else:
                hi = mid
        if lo < len(self.slots) and self.slots[lo].start <= phase:
            return self.slots[lo], self.slots[lo].end - phase
        next_start = self.slots[lo].start if lo < len(self.slots) else self.hyperperiod
        return None, next_start - phase

    def decide(self, state: SystemState) -> PolicyChoice:
        slot, until = self.slot_at(state.t)
        if slot is None:
            return PolicyChoice(None, max_slice=until)
        owner = state.by_name(slot.partition)
        if owner.active and owner.ready:
            return PolicyChoice(slot.partition, max_slice=until)
        return PolicyChoice(None, max_slice=until)


class GlobalPolicy:
    """Canonical policy names accepted by :func:`make_policy` and the CLI."""

    NORANDOM = "norandom"
    TIMEDICE_WEIGHTED = "timedice"
    TIMEDICE_UNIFORM = "timedice-uniform"
    TIMEDICE_INVERSE = "timedice-inverse"
    TDMA = "tdma"


#: The builtin policy names (docs and CLI help enumerate these); the open
#: set — builtins plus third-party registrations — lives in
#: :func:`repro.sim.registry.global_policy_names`.
POLICY_NAMES = (
    GlobalPolicy.NORANDOM,
    GlobalPolicy.TIMEDICE_WEIGHTED,
    GlobalPolicy.TIMEDICE_UNIFORM,
    GlobalPolicy.TIMEDICE_INVERSE,
    GlobalPolicy.TDMA,
)


def make_policy(
    name: str,
    system: Optional[System] = None,
    seed: Optional[int] = None,
    quantum: int = DEFAULT_QUANTUM,
    memoize: bool = True,
) -> GlobalPolicyBase:
    """Build a policy by registered name (see
    :func:`repro.sim.registry.register_global_policy`).

    ``system`` is required for TDMA (the static table is system-specific);
    ``seed``/``quantum``/``memoize`` apply to the TimeDice variants. Every
    entry's factory receives all four keywords and uses what it needs.
    """
    entry = get_global_policy(name)
    return entry.factory(system=system, seed=seed, quantum=quantum, memoize=memoize)


# ------------------------------------------------- registry (spec-addressable)


def _build_norandom(system=None, seed=None, quantum=DEFAULT_QUANTUM, memoize=True):
    return FixedPriorityPolicy()


def _build_timedice_weighted(
    system=None, seed=None, quantum=DEFAULT_QUANTUM, memoize=True
):
    return TimeDicePolicy(
        WeightedUtilizationSelector(), quantum=quantum, seed=seed, memoize=memoize
    )


def _build_timedice_uniform(
    system=None, seed=None, quantum=DEFAULT_QUANTUM, memoize=True
):
    return TimeDicePolicy(
        UniformSelector(), quantum=quantum, seed=seed, memoize=memoize
    )


def _build_timedice_inverse(
    system=None, seed=None, quantum=DEFAULT_QUANTUM, memoize=True
):
    return TimeDicePolicy(
        InverseUtilizationSelector(), quantum=quantum, seed=seed, memoize=memoize
    )


def _build_tdma(system=None, seed=None, quantum=DEFAULT_QUANTUM, memoize=True):
    if system is None:
        raise ValueError("TDMA needs the system to build its static table")
    return TDMAPolicy(system)


# The labels match each built instance's ``name`` attribute (the scalar
# engine's RunObs label); selector kinds drive the batch engine's vectorized
# dice. batch=True marks the policies repro.sim.batch implements.
register_global_policy(
    GlobalPolicy.NORANDOM, _build_norandom, label="norandom", batch=True
)
register_global_policy(
    GlobalPolicy.TIMEDICE_WEIGHTED,
    _build_timedice_weighted,
    label="timedice-weighted",
    selector_kind="weighted",
    batch=True,
)
register_global_policy(
    GlobalPolicy.TIMEDICE_UNIFORM,
    _build_timedice_uniform,
    label="timedice-uniform",
    selector_kind="uniform",
    batch=True,
)
register_global_policy(
    GlobalPolicy.TIMEDICE_INVERSE,
    _build_timedice_inverse,
    label="timedice-inverse",
    selector_kind="inverse",
    batch=True,
)
register_global_policy(GlobalPolicy.TDMA, _build_tdma, label="tdma", batch=True)
