"""Scheduler registries — the spec-addressable scheduler stack.

Two registries, mirroring :func:`repro.sim.config.register_system_builder`:

- :func:`register_local_scheduler` names partition-local schedulers
  (``"fp"``, ``"edf"``, ``"reorder"``, ``"blinder"``) so a
  :class:`~repro.sim.config.RunSpec` can select one by its ``scheduler``
  field and a campaign worker in another process can rebuild it.
- :func:`register_global_policy` names global (partition-level) policies and
  carries the metadata the engines used to hardcode per name: the telemetry
  label, the TimeDice selector kind, and whether the vectorized batch engine
  implements the policy. ``make_policy`` and the batch engine resolve
  through these entries, so a registered third-party policy can never
  silently collide with a string-compared builtin name.

Both registries follow the same contract: re-registering a name with a
*different* factory raises (silently repointing a name would change what
existing content hashes mean); re-registering the identical factory is an
idempotent no-op (campaign workers re-importing the owning module do exactly
that).

The builtin entries are registered by their owning modules on import —
:mod:`repro.sim.local` (fp/edf/reorder), :mod:`repro.sim.policies`
(norandom, the timedice variants, tdma), and
:mod:`repro.baselines.blinder` (blinder).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.model.partition import Partition
    from repro.model.system import System
    from repro.sim.local import LocalScheduler
    from repro.sim.policies import GlobalPolicyBase

#: Default local-scheduler name; ``RunSpec`` documents omit it so default
#: specs hash byte-identically to pre-``scheduler``-field ones.
DEFAULT_LOCAL_SCHEDULER = "fp"


@dataclass(frozen=True)
class LocalSchedulerEntry:
    """One named local scheduler.

    Attributes:
        name: The spec-addressable identifier (``RunSpec.scheduler``).
        factory: ``(partition, seed) -> LocalScheduler``. ``seed`` is None
            for deterministic schedulers; seeded ones receive a per-partition
            stream derived via :func:`repro.runner.seeding.derive_seed`.
        edf_based: The scheduler orders by absolute deadline, so the engine
            runs the EDF supply/demand vetting pass
            (:func:`repro.core.edf.edf_supply_report`) at construction.
        seeded: The factory consumes its seed argument (randomized
            schedulers); drives the derived per-partition seed streams.
    """

    name: str
    factory: Callable[["Partition", Optional[int]], "LocalScheduler"]
    edf_based: bool = False
    seeded: bool = False


@dataclass(frozen=True)
class GlobalPolicyEntry:
    """One named global policy plus the per-name metadata the engines need.

    Attributes:
        name: The spec-addressable identifier (``RunSpec.policy``).
        factory: ``(system=, seed=, quantum=, memoize=) -> GlobalPolicyBase``.
        label: The :class:`repro.obs.RunObs` label of runs under this policy
            (the scalar engine reads it off the built instance's ``name``;
            the batch engine reads it here).
        selector_kind: TimeDice selector kind (``"weighted"`` / ``"uniform"``
            / ``"inverse"``) for the batch engine's vectorized dice, None for
            non-randomized policies.
        batch: Whether :mod:`repro.sim.batch` implements the policy.
            Third-party registrations default to False and take the gated
            ``batch.fallback.policy`` path.
    """

    name: str
    factory: Callable[..., "GlobalPolicyBase"]
    label: str
    selector_kind: Optional[str] = None
    batch: bool = False
    extra: Dict[str, object] = field(default_factory=dict)


_LOCAL_SCHEDULERS: Dict[str, LocalSchedulerEntry] = {}
_GLOBAL_POLICIES: Dict[str, GlobalPolicyEntry] = {}


def register_local_scheduler(
    name: str,
    factory: Callable[["Partition", Optional[int]], "LocalScheduler"],
    *,
    edf_based: bool = False,
    seeded: bool = False,
) -> None:
    """Register a named local scheduler for ``RunSpec.scheduler``."""
    existing = _LOCAL_SCHEDULERS.get(name)
    if existing is not None and existing.factory is not factory:
        raise ValueError(f"local scheduler {name!r} is already registered")
    _LOCAL_SCHEDULERS[name] = LocalSchedulerEntry(
        name=name, factory=factory, edf_based=edf_based, seeded=seeded
    )


def register_global_policy(
    name: str,
    factory: Callable[..., "GlobalPolicyBase"],
    *,
    label: Optional[str] = None,
    selector_kind: Optional[str] = None,
    batch: bool = False,
) -> None:
    """Register a named global policy for ``RunSpec.policy`` / ``make_policy``."""
    existing = _GLOBAL_POLICIES.get(name)
    if existing is not None and existing.factory is not factory:
        raise ValueError(f"global policy {name!r} is already registered")
    _GLOBAL_POLICIES[name] = GlobalPolicyEntry(
        name=name,
        factory=factory,
        label=name if label is None else label,
        selector_kind=selector_kind,
        batch=batch,
    )


def local_scheduler_names() -> Tuple[str, ...]:
    """Registered local-scheduler names, in registration order."""
    return tuple(_LOCAL_SCHEDULERS)


def global_policy_names() -> Tuple[str, ...]:
    """Registered global-policy names, in registration order."""
    return tuple(_GLOBAL_POLICIES)


def find_local_scheduler(name: str) -> Optional[LocalSchedulerEntry]:
    return _LOCAL_SCHEDULERS.get(name)


def find_global_policy(name: str) -> Optional[GlobalPolicyEntry]:
    return _GLOBAL_POLICIES.get(name)


def get_local_scheduler(name: str) -> LocalSchedulerEntry:
    entry = _LOCAL_SCHEDULERS.get(name)
    if entry is None:
        raise ValueError(
            f"unknown local scheduler {name!r}; registered: "
            f"{sorted(_LOCAL_SCHEDULERS)} (schedulers register on import — "
            "is the owning module imported?)"
        )
    return entry


def get_global_policy(name: str) -> GlobalPolicyEntry:
    entry = _GLOBAL_POLICIES.get(name)
    if entry is None:
        raise ValueError(
            f"unknown policy {name!r}; registered: {sorted(_GLOBAL_POLICIES)} "
            "(policies register on import — is the owning module imported?)"
        )
    return entry


def make_local_scheduler_factory(
    name: str, seed: Optional[int] = None
) -> Callable[["Partition"], "LocalScheduler"]:
    """The engine's ``local_scheduler_factory`` for a registered name.

    Deterministic schedulers get ``seed=None``. Seeded ones (REORDER) get a
    per-partition stream — ``derive_seed(run_seed, "sched/<name>/<part>")`` —
    independent of the workload and global-policy streams, so adding a
    randomized local scheduler never perturbs either.
    """
    entry = get_local_scheduler(name)
    if not entry.seeded:
        return lambda spec: entry.factory(spec, None)
    root = 0 if seed is None else int(seed)

    def factory(spec: "Partition") -> "LocalScheduler":
        from repro.runner.seeding import derive_seed

        return entry.factory(spec, derive_seed(root, f"sched/{name}/{spec.name}"))

    return factory


__all__ = [
    "DEFAULT_LOCAL_SCHEDULER",
    "GlobalPolicyEntry",
    "LocalSchedulerEntry",
    "find_global_policy",
    "find_local_scheduler",
    "get_global_policy",
    "get_local_scheduler",
    "global_policy_names",
    "local_scheduler_names",
    "make_local_scheduler_factory",
    "register_global_policy",
    "register_local_scheduler",
]
