"""Online invariant checking for simulation runs.

:class:`InvariantChecker` is an observer that validates, as the run unfolds,
the structural properties every correct two-level schedule must satisfy:

- the segment stream is contiguous and non-overlapping (the CPU is always
  accounted for, exactly once);
- no partition receives more than its budget in any replenishment period
  (unless idle-budget donation is explicitly allowed);
- every completed job was served for exactly its demand
  (``finish - arrival >= demand`` and ``start >= arrival``).

Violations raise :class:`InvariantViolation` at the offending event, which
makes regressions fail loudly at their root cause instead of corrupting
downstream statistics. Attach it to any :class:`~repro.sim.engine.Simulator`
via ``observers=[InvariantChecker(system)]``.
"""

from __future__ import annotations

import random
from collections import defaultdict
from typing import Dict, Iterable, Optional

from repro.model.system import System
from repro.model.task import Task
from repro.sim.behaviors import Behavior
from repro.sim.trace import JobRecord, Observer


class InvariantViolation(AssertionError):
    """A scheduling invariant was broken during simulation."""


class InvariantChecker(Observer):
    """Validates segment continuity, budget caps, and job accounting.

    Args:
        system: The simulated system (for budgets and periods).
        allow_donation: Permit service beyond a partition's own budget (the
            Sec. II-a donation rule); the continuity and job checks still
            apply.
    """

    def __init__(self, system: System, allow_donation: bool = False):
        self.system = system
        self.allow_donation = allow_donation
        self._budget: Dict[str, int] = {p.name: p.budget for p in system}
        self._period: Dict[str, int] = {p.name: p.period for p in system}
        self._served: Dict[str, Dict[int, int]] = defaultdict(lambda: defaultdict(int))
        self._last_end: Optional[int] = None
        self.segments_seen = 0
        self.jobs_seen = 0

    # -------------------------------------------------------------- segments

    def on_segment(self, start: int, end: int, partition, task) -> None:
        self.segments_seen += 1
        if end <= start:
            raise InvariantViolation(f"empty or reversed segment [{start}, {end})")
        if self._last_end is not None and start != self._last_end:
            raise InvariantViolation(
                f"segment stream not contiguous: previous ended at "
                f"{self._last_end}, next starts at {start}"
            )
        self._last_end = end
        if partition is None:
            return
        if partition not in self._budget:
            raise InvariantViolation(f"segment for unknown partition {partition!r}")
        if self.allow_donation:
            return
        period = self._period[partition]
        cap = self._budget[partition]
        t = start
        while t < end:
            index = t // period
            boundary = (index + 1) * period
            span = min(end, boundary) - t
            self._served[partition][index] += span
            if self._served[partition][index] > cap:
                raise InvariantViolation(
                    f"{partition} served {self._served[partition][index]}us in "
                    f"period {index}, exceeding its budget {cap}us"
                )
            t += span

    # ------------------------------------------------------------------ jobs

    def on_job_complete(self, record: JobRecord) -> None:
        self.jobs_seen += 1
        if record.started_at < record.arrival:
            raise InvariantViolation(
                f"{record.task}: started at {record.started_at} before its "
                f"arrival {record.arrival}"
            )
        if record.finished_at - record.arrival < record.demand:
            raise InvariantViolation(
                f"{record.task}: response {record.finished_at - record.arrival}us "
                f"shorter than its demand {record.demand}us"
            )
        if record.finished_at <= record.started_at:
            raise InvariantViolation(f"{record.task}: zero-length execution")


# -------------------------------------------------- behaviour well-formedness


def check_behavior_well_formed(
    behavior: Behavior,
    task: Task,
    seeds: Iterable[int] = range(8),
    arrivals_per_seed: int = 64,
) -> int:
    """Sample a behaviour's draws and verify the nominal task-model bounds.

    Every analysis in the reproduction (candidacy, busy-interval WCRT, the
    schedulability-preservation property) assumes jobs never demand more
    than the declared WCET and arrivals never bunch tighter than one µs.
    Nominal behaviours must uphold that by construction — exceeding the WCET
    is *exactly* what distinguishes an injected ``overrun`` fault
    (:mod:`repro.faults`) from honest workload noise, and the engine applies
    the injector only *after* its own WCET clamp.

    Drives ``behavior`` through ``arrivals_per_seed`` simulated arrivals per
    seed (advancing time by the drawn gaps, so window-dependent behaviours
    like the sender see realistic phases) and checks every draw:

    - ``1 <= execution_time(t) <= task.wcet``;
    - ``inter_arrival(t) >= 1``.

    Returns the number of jobs checked; raises :class:`InvariantViolation`
    on the first offending draw.
    """
    checked = 0
    for seed in seeds:
        rng = random.Random(seed)
        t = task.offset
        for _ in range(arrivals_per_seed):
            demand = behavior.execution_time(task, t, rng)
            if demand < 1:
                raise InvariantViolation(
                    f"{task.name}: behaviour {type(behavior).__name__} drew a "
                    f"non-positive demand {demand}us at t={t} (seed {seed})"
                )
            if demand > task.wcet:
                raise InvariantViolation(
                    f"{task.name}: behaviour {type(behavior).__name__} drew "
                    f"demand {demand}us above the declared WCET {task.wcet}us "
                    f"at t={t} (seed {seed}) — absent injected faults, jobs "
                    f"must never exceed their WCET"
                )
            gap = behavior.inter_arrival(task, t, rng)
            if gap < 1:
                raise InvariantViolation(
                    f"{task.name}: behaviour {type(behavior).__name__} drew a "
                    f"non-positive inter-arrival gap {gap}us at t={t} "
                    f"(seed {seed})"
                )
            t += gap
            checked += 1
    return checked


def check_system_behaviors(
    system: System,
    behaviors: Dict[str, Behavior],
    seeds: Iterable[int] = range(8),
    arrivals_per_seed: int = 64,
) -> int:
    """Run :func:`check_behavior_well_formed` for every task of ``system``
    against its registered behaviour. Returns total jobs checked."""
    checked = 0
    for partition in system:
        for task in partition.tasks:
            behavior = behaviors.get(task.behavior)
            if behavior is None:
                raise InvariantViolation(
                    f"task {task.name} uses behaviour {task.behavior!r} but "
                    f"no such behaviour is registered"
                )
            checked += check_behavior_well_formed(
                behavior, task, seeds=seeds, arrivals_per_seed=arrivals_per_seed
            )
    return checked
