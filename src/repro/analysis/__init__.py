"""Schedulability and worst-case response-time analyses.

- :mod:`repro.analysis.wcrt` — task-level WCRT under plain hierarchical
  fixed-priority scheduling (NoRandom, Davis & Burns [33]) and under TimeDice
  (Sec. IV-B, Eqs. 4-5). Regenerates the analytic columns of Table II
  digit-for-digit.
- :mod:`repro.analysis.schedulability` — partition-level (Definition 1) and
  task-level schedulability predicates, plus the offline static test used to
  assert that a configuration is schedulable before randomization.
"""

from repro.analysis.schedulability import (
    partition_set_schedulable,
    system_schedulability_report,
    task_schedulable,
)
from repro.analysis.supply import lsbf, rbf, sbf, sbf_schedulable, sbf_wcrt
from repro.analysis.wcrt import (
    local_load,
    partition_busy_period,
    wcrt_norandom,
    wcrt_norandom_modular,
    wcrt_table,
    wcrt_timedice,
)

__all__ = [
    "wcrt_norandom",
    "wcrt_norandom_modular",
    "partition_busy_period",
    "wcrt_timedice",
    "wcrt_table",
    "local_load",
    "partition_set_schedulable",
    "task_schedulable",
    "system_schedulability_report",
    "sbf",
    "lsbf",
    "rbf",
    "sbf_schedulable",
    "sbf_wcrt",
]
