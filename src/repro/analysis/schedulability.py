"""Offline schedulability predicates.

Two levels, mirroring the paper's model:

- **Partition level** (Definition 1): every partition must be guaranteed its
  full budget :math:`B_i` in every period :math:`T_i` under fixed-priority
  scheduling of budget servers. We test it with the classical worst-case
  response time of the "budget job": budgets of all higher-priority
  partitions arrive together and replenish as fast as possible,

  .. math:: R_i \\leftarrow B_i + \\sum_{\\Pi_j \\in hp(\\Pi_i)}
              \\lceil R_i / T_j \\rceil B_j \\le T_i.

  This is the precondition TimeDice preserves: "partitions are schedulable if
  they were so before any randomization".

- **Task level**: the WCRT analyses of :mod:`repro.analysis.wcrt` compared
  against deadlines, under either scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro._time import ceil_div, to_ms
from repro.analysis.wcrt import wcrt_norandom, wcrt_timedice
from repro.model.partition import Partition
from repro.model.system import System
from repro.model.task import Task

MAX_ITERATIONS = 100_000


def partition_budget_response(system: System, partition: Partition) -> Optional[int]:
    """Worst-case time (µs) for ``partition`` to receive its full budget.

    Classical response-time iteration over the higher-priority partitions'
    budgets; None when it diverges past the period (budget not guaranteed).
    """
    higher = system.higher_priority(partition)
    response = partition.budget
    for _ in range(MAX_ITERATIONS):
        nxt = partition.budget + sum(
            ceil_div(response, hp.period) * hp.budget for hp in higher
        )
        if nxt == response:
            return response
        response = nxt
        if response > partition.period:
            return None
    return None


def partition_schedulable(system: System, partition: Partition) -> bool:
    """Definition 1: is ``partition`` guaranteed :math:`B_i` every :math:`T_i`?"""
    response = partition_budget_response(system, partition)
    return response is not None and response <= partition.period


def partition_set_schedulable(system: System) -> bool:
    """True iff *every* partition satisfies Definition 1.

    This is the precondition of the TimeDice guarantee; the simulator's
    property tests assert that whenever this predicate holds, no partition is
    ever shorted a microsecond of budget under randomization.
    """
    return all(partition_schedulable(system, p) for p in system)


def task_schedulable(partition: Partition, task: Task, timedice: bool) -> bool:
    """Does ``task`` meet its deadline under the chosen global scheduler?"""
    wcrt = wcrt_timedice(partition, task) if timedice else wcrt_norandom(partition, task)
    return wcrt is not None and wcrt <= task.deadline


@dataclass
class SchedulabilityReport:
    """Full offline report for a system (what a system designer would run)."""

    partition_ok: Dict[str, bool] = field(default_factory=dict)
    partition_budget_response_ms: Dict[str, Optional[float]] = field(default_factory=dict)
    task_ok_norandom: Dict[str, bool] = field(default_factory=dict)
    task_ok_timedice: Dict[str, bool] = field(default_factory=dict)

    @property
    def all_partitions_schedulable(self) -> bool:
        return all(self.partition_ok.values())

    @property
    def all_tasks_schedulable_norandom(self) -> bool:
        return all(self.task_ok_norandom.values())

    @property
    def all_tasks_schedulable_timedice(self) -> bool:
        return all(self.task_ok_timedice.values())


def system_schedulability_report(system: System) -> SchedulabilityReport:
    """Run every offline test on ``system`` and collect the outcomes."""
    report = SchedulabilityReport()
    for partition in system:
        response = partition_budget_response(system, partition)
        report.partition_ok[partition.name] = (
            response is not None and response <= partition.period
        )
        report.partition_budget_response_ms[partition.name] = (
            None if response is None else to_ms(response)
        )
        for task in partition.tasks:
            report.task_ok_norandom[task.name] = task_schedulable(partition, task, False)
            report.task_ok_timedice[task.name] = task_schedulable(partition, task, True)
    return report
