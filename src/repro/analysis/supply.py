"""Periodic resource model: supply bound functions (Shin & Lee [15]).

The paper's partitions are instances of the periodic resource model
:math:`\\Gamma = (T, B)`: a budget :math:`B` guaranteed every period
:math:`T`, with no control over *where* in the period it is supplied. The
classical worst case places the supply at the start of one period and the
end of the next, giving an initial starvation of up to :math:`2(T - B)`;
thereafter supply arrives at full budget per period:

.. math::

    \\mathrm{sbf}(t) = \\left\\lfloor \\frac{t - (T - B)}{T} \\right\\rfloor B
        + \\max\\!\\left(0,\\; t - 2(T - B) -
          T \\left\\lfloor \\frac{t - (T - B)}{T} \\right\\rfloor \\right)

with the linear lower bound :math:`\\mathrm{lsbf}(t) = \\frac{B}{T}(t - 2(T - B))`.

A task set is schedulable on the resource iff, for every task, some point
:math:`t` before its deadline satisfies
:math:`\\mathrm{rbf}_i(t) \\le \\mathrm{sbf}(t)` — the demand-vs-supply
formulation, which we use to cross-validate the paper's recurrence-based
WCRT analysis (the sbf model is the *most* pessimistic of the three: it
assumes nothing about when the budget lands, exactly like TimeDice's worst
case; indeed sbf-schedulability implies TimeDice-schedulability for
implicit-deadline tasks).
"""

from __future__ import annotations

from typing import List, Optional

from repro._time import ceil_div
from repro.model.partition import Partition
from repro.model.task import Task


def sbf(partition: Partition, t: int) -> int:
    """Worst-case supply (µs) of the periodic resource over any window of ``t``."""
    if t < 0:
        raise ValueError(f"window must be non-negative, got {t}")
    period, budget = partition.period, partition.budget
    gap = period - budget
    if t <= gap:
        return 0
    whole = (t - gap) // period
    partial = max(0, t - 2 * gap - period * whole)
    return whole * budget + min(partial, budget)


def lsbf(partition: Partition, t: int) -> float:
    """The linear lower bound on :func:`sbf` (useful for quick rejections)."""
    if t < 0:
        raise ValueError(f"window must be non-negative, got {t}")
    period, budget = partition.period, partition.budget
    return max(0.0, (budget / period) * (t - 2 * (period - budget)))


def rbf(partition: Partition, task: Task, t: int) -> int:
    """Request bound function: demand of ``task`` + its local hp set by ``t``."""
    if t < 0:
        raise ValueError(f"window must be non-negative, got {t}")
    demand = task.wcet
    for other in partition.higher_priority_tasks(task):
        demand += ceil_div(max(t, 1), other.period) * other.wcet
    return demand


def _candidate_points(partition: Partition, task: Task, horizon: int) -> List[int]:
    """Where rbf/sbf can cross: task arrivals and supply-pattern corners."""
    points = {horizon}
    for other in partition.higher_priority_tasks(task):
        k = 1
        while k * other.period <= horizon:
            points.add(k * other.period)
            k += 1
    gap = partition.period - partition.budget
    t = 2 * gap
    while t <= horizon:
        points.add(t)
        points.add(t + partition.budget)
        t += partition.period
    return sorted(p for p in points if 0 < p <= horizon)


def sbf_schedulable(partition: Partition, task: Task) -> bool:
    """Shin & Lee's test: ∃ t ≤ deadline with rbf(t) ≤ sbf(t)."""
    return any(
        rbf(partition, task, t) <= sbf(partition, t)
        for t in _candidate_points(partition, task, task.deadline)
    )


def sbf_wcrt(partition: Partition, task: Task, horizon: Optional[int] = None) -> Optional[int]:
    """Smallest ``t`` with rbf(t) ≤ sbf(t): the sbf-based response bound (µs).

    None when no such point exists within ``horizon`` (default: 10 deadlines).
    """
    if horizon is None:
        horizon = 10 * task.deadline
    for t in _candidate_points(partition, task, horizon):
        if rbf(partition, task, t) <= sbf(partition, t):
            return t
    return None
