"""Worst-case response-time analysis (Sec. IV-B).

Both analyses share the local-load function of Eq. (5): the demand that task
:math:`\\tau_{i,j}` plus its local higher-priority tasks place on partition
:math:`\\Pi_i` over a window that opens :math:`T_i - B_i` before the first
budget becomes available,

.. math::

    L_{i,j}(r) = e_{i,j} + \\sum_{\\tau_{i,x} \\in hp(\\tau_{i,j})}
        \\left\\lceil \\frac{(T_i - B_i) + r}{p_{i,x}} \\right\\rceil e_{i,x}.

They differ in how many budget-supply gaps the workload can straddle:

- **NoRandom** (hierarchical fixed-priority, after Davis & Burns [33]): the
  last chunk of work is served once its replenishment arrives *and* the
  higher-priority partitions' synchronized busy period :math:`I_i` has
  drained, so a load needing :math:`\\lceil L/B_i \\rceil` replenishments
  crosses :math:`\\lceil L/B_i \\rceil - 1` gaps of length
  :math:`T_i - B_i` plus :math:`I_i`:

  .. math:: r \\leftarrow L_{i,j}(r) +
            (\\lceil L_{i,j}(r)/B_i \\rceil - 1)(T_i - B_i) + I_i

  where :math:`I_i` solves :math:`I = \\sum_{\\Pi_j \\in hp(\\Pi_i)}
  \\lceil I / T_j \\rceil B_j` (the level-:math:`i` partition busy period).
  The pure modular form without :math:`I_i` is also available as
  :func:`wcrt_norandom_modular`.

- **TimeDice** (Eq. 4): randomization may defer *every* chunk — including the
  last — to the very end of its period (Fig. 11), adding one more gap:

  .. math:: r \\leftarrow L_{i,j}(r) + \\lceil L_{i,j}(r)/B_i \\rceil (T_i - B_i)

In both cases :math:`wcrt_{i,j} = (T_i - B_i) + r` at the fixed point — the
leading :math:`T_i - B_i` is the worst-case initial budget unavailability.
Note the modularity the paper highlights for the TimeDice analysis: that
WCRT depends only on the task's own partition parameters, so partition
developers can validate their tasks against TimeDice in isolation.

Fidelity against Table II: the TimeDice recurrence reproduces **all 25**
analytic TimeDice values digit-for-digit; the NoRandom reconstruction
reproduces 19 of 25 exactly, with the remaining six (τ₄,₃ τ₄,₅ τ₅,₂ τ₅,₃
τ₅,₄ τ₅,₅) lower by exactly one higher-priority budget (3.2 or 4.8 ms,
≤ 4 %) — the paper's tool appears to add a carry-in ("double hit") budget
for particular replenishment alignments that [33] leaves open. The unit
tests pin all 50 values at these documented tolerances.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro._time import ceil_div, to_ms
from repro.model.partition import Partition
from repro.model.system import System
from repro.model.task import Task

#: Iteration cap; any realistic configuration converges or overruns its
#: deadline long before this.
MAX_ITERATIONS = 100_000


def local_load(partition: Partition, task: Task, r: int) -> int:
    """Eq. (5): worst-case local demand of ``task`` over a window of ``r``.

    The window spans :math:`(T_i - B_i) + r` because the critical instant has
    the whole task set arrive exactly when the budget has just been exhausted
    as early as possible in the period.
    """
    gap = partition.period - partition.budget
    demand = task.wcet
    for other in partition.higher_priority_tasks(task):
        demand += ceil_div(gap + r, other.period) * other.wcet
    return demand


def _wcrt(
    partition: Partition,
    task: Task,
    extra_gaps: int,
    limit: Optional[int],
    interference: int = 0,
) -> Optional[int]:
    """Shared fixed-point driver.

    ``extra_gaps`` is 0 for NoRandom (the ``ceil - 1`` form) and 1 for
    TimeDice (the ``ceil`` form); ``interference`` is the constant
    higher-priority-partition busy period added by the hierarchical NoRandom
    analysis. Returns the WCRT in µs, or None when the recurrence exceeds
    ``limit`` (unschedulable / divergent).
    """
    gap = partition.period - partition.budget
    r = task.wcet
    for _ in range(MAX_ITERATIONS):
        load = local_load(partition, task, r)
        replenishments = ceil_div(load, partition.budget) - 1 + extra_gaps
        nxt = load + replenishments * gap + interference
        if nxt == r:
            return gap + r
        r = nxt
        if limit is not None and gap + r > limit:
            return None
    return None


def partition_busy_period(higher: "list[Partition]") -> Optional[int]:
    """Level-:math:`i` partition busy period :math:`I_i` (µs).

    The longest interval the partitions above :math:`\\Pi_i` can jointly
    occupy the CPU when they replenish synchronously and consume greedily:
    the least fixed point of :math:`I = \\sum_j \\lceil I/T_j \\rceil B_j`.
    None when it diverges (higher-priority utilization >= 1).
    """
    if not higher:
        return 0
    busy = sum(p.budget for p in higher)
    bound = 1000 * max(p.period for p in higher)
    for _ in range(MAX_ITERATIONS):
        nxt = sum(ceil_div(busy, p.period) * p.budget for p in higher)
        if nxt == busy:
            return busy
        busy = nxt
        if busy > bound:
            return None
    return None


def wcrt_norandom_modular(
    partition: Partition, task: Task, limit: Optional[int] = None
) -> Optional[int]:
    """WCRT (µs) under NoRandom, *modular* form (no hp-partition term).

    Uses only the task's own partition parameters — the counterpart of the
    TimeDice analysis with one fewer gap. Optimistic relative to the full
    hierarchical analysis whenever higher-priority partitions exist; useful
    for like-for-like modularity comparisons and as the lower envelope.
    """
    if limit is None:
        limit = 10 * task.deadline
    return _wcrt(partition, task, extra_gaps=0, limit=limit)


def wcrt_norandom(
    partition: Partition,
    task: Task,
    limit: Optional[int] = None,
    system: Optional[System] = None,
) -> Optional[int]:
    """WCRT (µs) under plain hierarchical fixed-priority scheduling [33].

    When ``system`` is given, the constant interference term :math:`I_i`
    (the higher-priority partition busy period) is added, reconstructing the
    paper's Table II NoRandom analysis; without it the modular form is used.

    ``limit`` (µs) aborts early once the response time provably exceeds it;
    defaults to ten deadlines, enough to flag gross unschedulability without
    iterating forever on divergent loads.
    """
    if limit is None:
        limit = 10 * task.deadline
    interference = 0
    if system is not None:
        busy = partition_busy_period(system.higher_priority(partition))
        if busy is None:
            return None
        interference = busy
    return _wcrt(partition, task, extra_gaps=0, limit=limit, interference=interference)


def wcrt_timedice(partition: Partition, task: Task, limit: Optional[int] = None) -> Optional[int]:
    """WCRT (µs) when partitions are randomized by TimeDice (Eq. 4)."""
    if limit is None:
        limit = 10 * task.deadline
    return _wcrt(partition, task, extra_gaps=1, limit=limit)


@dataclass(frozen=True)
class WcrtRow:
    """One Table II row: analytic WCRTs of one task (ms)."""

    task: str
    partition: str
    deadline_ms: float
    norandom_ms: Optional[float]
    timedice_ms: Optional[float]

    @property
    def delta_ms(self) -> Optional[float]:
        if self.norandom_ms is None or self.timedice_ms is None:
            return None
        return self.timedice_ms - self.norandom_ms

    @property
    def schedulable_norandom(self) -> bool:
        return self.norandom_ms is not None and self.norandom_ms <= self.deadline_ms

    @property
    def schedulable_timedice(self) -> bool:
        return self.timedice_ms is not None and self.timedice_ms <= self.deadline_ms


def wcrt_table(system: System) -> List[WcrtRow]:
    """Analytic WCRTs for every task of ``system`` (the Table II skeleton)."""
    rows = []
    for partition in system:
        for task in partition.tasks_by_priority():
            nr = wcrt_norandom(partition, task, system=system)
            td = wcrt_timedice(partition, task)
            rows.append(
                WcrtRow(
                    task=task.name,
                    partition=partition.name,
                    deadline_ms=to_ms(task.deadline),
                    norandom_ms=None if nr is None else to_ms(nr),
                    timedice_ms=None if td is None else to_ms(td),
                )
            )
    return rows
