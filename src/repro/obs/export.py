"""Exporters: Chrome/Perfetto ``trace_event`` JSON and flat metrics JSON.

The trace document follows the Trace Event Format (the JSON flavour both
``chrome://tracing`` and https://ui.perfetto.dev open directly):

- **Track 0 — the simulated schedule.** One process (``pid``) per captured
  run; one thread lane (``tid``) per partition plus a final IDLE lane.
  Each execution segment becomes a complete ("X") event whose ``ts``/``dur``
  are the *simulated* microseconds, so the schedule renders 1:1.
- **Scheduler-internal tracks.** Each run gets a second process holding one
  lane per span name (``decide``, ``candidacy``, ``memo.probe``,
  ``engine.dispatch``). Spans anchored to simulated time (``sim_ts``) are
  placed at that instant; their ``dur`` is the measured *wall* cost
  converted to µs — deliberately mixed units, documented in
  ``docs/OBSERVABILITY.md``, so "where does the millisecond go" reads
  directly under the schedule. The true nanosecond cost rides in ``args``.

Everything is duck-typed against segment objects exposing
``start/end/partition/task`` (:class:`repro.sim.trace.Segment` fits) so this
module imports nothing from :mod:`repro.sim` and stays cycle-free.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Sequence

#: Lane label of the imaginary idle partition in the schedule track.
IDLE_LANE = "IDLE"


def schedule_trace_events(
    segments: Iterable[Any], partitions: Sequence[str], pid: int, label: str
) -> List[Dict[str, Any]]:
    """The schedule track: one complete event per execution segment."""
    lanes = {name: tid for tid, name in enumerate(partitions)}
    idle_tid = len(partitions)
    events: List[Dict[str, Any]] = [
        {"ph": "M", "pid": pid, "name": "process_name", "args": {"name": label}},
        {"ph": "M", "pid": pid, "name": "process_sort_index", "args": {"sort_index": pid}},
    ]
    for name, tid in list(lanes.items()) + [(IDLE_LANE, idle_tid)]:
        events.append(
            {"ph": "M", "pid": pid, "tid": tid, "name": "thread_name", "args": {"name": name}}
        )
        events.append(
            {"ph": "M", "pid": pid, "tid": tid, "name": "thread_sort_index",
             "args": {"sort_index": tid}}
        )
    for segment in segments:
        if segment.end <= segment.start:
            continue
        if segment.partition is None:
            tid, name = idle_tid, "idle"
        else:
            tid = lanes.get(segment.partition, idle_tid)
            name = segment.task or segment.partition
        events.append(
            {
                "ph": "X",
                "pid": pid,
                "tid": tid,
                "ts": segment.start,
                "dur": segment.end - segment.start,
                "name": name,
                "cat": "schedule",
            }
        )
    return events


def span_trace_events(
    spans: Iterable[Any], pid: int, label: str
) -> List[Dict[str, Any]]:
    """Scheduler-internal tracks: one lane per span name.

    Spans with a ``sim_ts`` anchor are placed on the simulated timeline;
    wall-only spans are placed relative to the first span's wall clock so
    they still render coherently. ``dur`` is wall nanoseconds expressed in
    µs (floored at 1 so zero-width spans stay visible); the exact cost is
    in ``args.wall_ns``.
    """
    spans = list(spans)
    events: List[Dict[str, Any]] = [
        {"ph": "M", "pid": pid, "name": "process_name", "args": {"name": label}},
        {"ph": "M", "pid": pid, "name": "process_sort_index", "args": {"sort_index": pid}},
    ]
    lanes: Dict[str, int] = {}
    wall_origin = spans[0].wall_start_ns if spans else 0
    for span in spans:
        tid = lanes.get(span.name)
        if tid is None:
            tid = lanes[span.name] = len(lanes)
            events.append(
                {"ph": "M", "pid": pid, "tid": tid, "name": "thread_name",
                 "args": {"name": span.name}}
            )
        ts = (
            span.sim_ts
            if span.sim_ts is not None
            else (span.wall_start_ns - wall_origin) // 1000
        )
        events.append(
            {
                "ph": "X",
                "pid": pid,
                "tid": tid,
                "ts": ts,
                "dur": max(1, span.wall_dur_ns // 1000),
                "name": span.name,
                "cat": span.cat,
                "args": {"wall_ns": span.wall_dur_ns},
            }
        )
    return events


def trace_event_document(runs: Sequence[Any]) -> Dict[str, Any]:
    """Assemble captured runs into one trace_event JSON document.

    ``runs`` are objects exposing ``label``, ``partitions``, ``segments``
    (an iterable) and ``spans`` (an iterable of :class:`~repro.obs.spans.
    Span`) — :class:`repro.obs.CapturedRun` is the canonical shape. Run
    ``k`` claims pids ``2k`` (schedule) and ``2k + 1`` (scheduler spans).
    """
    events: List[Dict[str, Any]] = []
    for index, run in enumerate(runs):
        events.extend(
            schedule_trace_events(
                run.segments, run.partitions, pid=2 * index,
                label=f"schedule: {run.label}",
            )
        )
        span_list = list(run.spans)
        if span_list:
            events.extend(
                span_trace_events(
                    span_list, pid=2 * index + 1, label=f"scheduler: {run.label}"
                )
            )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"generator": "repro.obs", "runs": len(runs)},
    }


def write_trace(path, runs: Sequence[Any]) -> int:
    """Write the Perfetto-openable trace for ``runs``; returns event count."""
    document = trace_event_document(runs)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle)
    return len(document["traceEvents"])


def metrics_json(snapshot: Dict[str, Any], path=None) -> str:
    """Serialize a registry snapshot as stable flat JSON (optionally to a
    file)."""
    text = json.dumps(snapshot, indent=2, sort_keys=True, default=float)
    if path is not None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
    return text


def _fmt_ns(ns: Optional[float]) -> str:
    if ns is None:
        return "-"
    if ns >= 1e6:
        return f"{ns / 1e6:.3f} ms"
    if ns >= 1e3:
        return f"{ns / 1e3:.3f} us"
    return f"{ns:.0f} ns"


def format_metrics(
    metrics: Dict[str, Any], span_summary: Optional[Dict[str, Dict[str, float]]] = None,
    title: str = "metrics",
) -> str:
    """Pretty-print one run's metrics snapshot (the ``stats`` subcommand).

    Histogram-valued metrics render as a count/p50/p95/max line; scalar
    metrics as plain ``name = value`` rows, grouped by dotted prefix.
    """
    lines = [f"[{title}]"]
    scalars = {k: v for k, v in sorted(metrics.items()) if not isinstance(v, dict)}
    histograms = {k: v for k, v in sorted(metrics.items()) if isinstance(v, dict)}
    group = None
    for name, value in scalars.items():
        prefix = name.split(".", 1)[0]
        if prefix != group:
            group = prefix
            lines.append(f"  {group}:")
        shown = f"{value:.4f}".rstrip("0").rstrip(".") if isinstance(value, float) else value
        lines.append(f"    {name} = {shown}")
    for name, snap in histograms.items():
        fmt = _fmt_ns if name.endswith("_ns") else (
            lambda v: "-" if v is None else f"{v:.2f}".rstrip("0").rstrip(".")
        )
        lines.append(f"  {name}:")
        lines.append(
            "    count={count}  p50={p50}  p95={p95}  max={vmax}  mean={mean}".format(
                count=snap.get("count", 0),
                p50=fmt(snap.get("p50")),
                p95=fmt(snap.get("p95")),
                vmax=fmt(snap.get("max")),
                mean=fmt(snap.get("mean")),
            )
        )
    if span_summary:
        lines.append("  spans:")
        for name, stats in span_summary.items():
            lines.append(
                f"    {name}: count={int(stats['count'])}  "
                f"total={_fmt_ns(stats['total_ns'])}  mean={_fmt_ns(stats['mean_ns'])}  "
                f"recorded={int(stats['recorded'])}"
            )
    return "\n".join(lines)
