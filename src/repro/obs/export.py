"""Exporters: Perfetto trace JSON, metrics JSON, and Prometheus text.

Three output surfaces share this module: the Chrome/Perfetto
``trace_event`` document (below), flat metrics JSON, and — for the fleet
scope — a Prometheus/OpenMetrics text renderer (:func:`prometheus_text`)
with an atomic per-process snapshot writer
(:func:`write_metrics_snapshot`) and a throttled periodic exporter
(:class:`MetricsExporter`, armed by ``--metrics-dir``) that leaves
``metrics-<pid>.prom`` / ``.json`` artifacts per worker.

The trace document follows the Trace Event Format (the JSON flavour both
``chrome://tracing`` and https://ui.perfetto.dev open directly):

- **Track 0 — the simulated schedule.** One process (``pid``) per captured
  run; one thread lane (``tid``) per partition plus a final IDLE lane.
  Each execution segment becomes a complete ("X") event whose ``ts``/``dur``
  are the *simulated* microseconds, so the schedule renders 1:1.
- **Scheduler-internal tracks.** Each run gets a second process holding one
  lane per span name (``decide``, ``candidacy``, ``memo.probe``,
  ``engine.dispatch``). Spans anchored to simulated time (``sim_ts``) are
  placed at that instant; their ``dur`` is the measured *wall* cost
  converted to µs — deliberately mixed units, documented in
  ``docs/OBSERVABILITY.md``, so "where does the millisecond go" reads
  directly under the schedule. The true nanosecond cost rides in ``args``.

Everything is duck-typed against segment objects exposing
``start/end/partition/task`` (:class:`repro.sim.trace.Segment` fits) so this
module imports nothing from :mod:`repro.sim` and stays cycle-free.
"""

from __future__ import annotations

import atexit
import json
import os
import re
import time
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence

#: Lane label of the imaginary idle partition in the schedule track.
IDLE_LANE = "IDLE"


def schedule_trace_events(
    segments: Iterable[Any], partitions: Sequence[str], pid: int, label: str
) -> List[Dict[str, Any]]:
    """The schedule track: one complete event per execution segment."""
    lanes = {name: tid for tid, name in enumerate(partitions)}
    idle_tid = len(partitions)
    events: List[Dict[str, Any]] = [
        {"ph": "M", "pid": pid, "name": "process_name", "args": {"name": label}},
        {"ph": "M", "pid": pid, "name": "process_sort_index", "args": {"sort_index": pid}},
    ]
    for name, tid in list(lanes.items()) + [(IDLE_LANE, idle_tid)]:
        events.append(
            {"ph": "M", "pid": pid, "tid": tid, "name": "thread_name", "args": {"name": name}}
        )
        events.append(
            {"ph": "M", "pid": pid, "tid": tid, "name": "thread_sort_index",
             "args": {"sort_index": tid}}
        )
    for segment in segments:
        if segment.end <= segment.start:
            continue
        if segment.partition is None:
            tid, name = idle_tid, "idle"
        else:
            tid = lanes.get(segment.partition, idle_tid)
            name = segment.task or segment.partition
        events.append(
            {
                "ph": "X",
                "pid": pid,
                "tid": tid,
                "ts": segment.start,
                "dur": segment.end - segment.start,
                "name": name,
                "cat": "schedule",
            }
        )
    return events


def span_trace_events(
    spans: Iterable[Any], pid: int, label: str
) -> List[Dict[str, Any]]:
    """Scheduler-internal tracks: one lane per span name.

    Spans with a ``sim_ts`` anchor are placed on the simulated timeline;
    wall-only spans are placed relative to the first span's wall clock so
    they still render coherently. ``dur`` is wall nanoseconds expressed in
    µs (floored at 1 so zero-width spans stay visible); the exact cost is
    in ``args.wall_ns``.
    """
    spans = list(spans)
    events: List[Dict[str, Any]] = [
        {"ph": "M", "pid": pid, "name": "process_name", "args": {"name": label}},
        {"ph": "M", "pid": pid, "name": "process_sort_index", "args": {"sort_index": pid}},
    ]
    lanes: Dict[str, int] = {}
    wall_origin = spans[0].wall_start_ns if spans else 0
    for span in spans:
        tid = lanes.get(span.name)
        if tid is None:
            tid = lanes[span.name] = len(lanes)
            events.append(
                {"ph": "M", "pid": pid, "tid": tid, "name": "thread_name",
                 "args": {"name": span.name}}
            )
        ts = (
            span.sim_ts
            if span.sim_ts is not None
            else (span.wall_start_ns - wall_origin) // 1000
        )
        events.append(
            {
                "ph": "X",
                "pid": pid,
                "tid": tid,
                "ts": ts,
                "dur": max(1, span.wall_dur_ns // 1000),
                "name": span.name,
                "cat": span.cat,
                "args": {"wall_ns": span.wall_dur_ns},
            }
        )
    return events


def trace_event_document(runs: Sequence[Any]) -> Dict[str, Any]:
    """Assemble captured runs into one trace_event JSON document.

    ``runs`` are objects exposing ``label``, ``partitions``, ``segments``
    (an iterable) and ``spans`` (an iterable of :class:`~repro.obs.spans.
    Span`) — :class:`repro.obs.CapturedRun` is the canonical shape. Run
    ``k`` claims pids ``2k`` (schedule) and ``2k + 1`` (scheduler spans).
    """
    events: List[Dict[str, Any]] = []
    for index, run in enumerate(runs):
        events.extend(
            schedule_trace_events(
                run.segments, run.partitions, pid=2 * index,
                label=f"schedule: {run.label}",
            )
        )
        span_list = list(run.spans)
        if span_list:
            events.extend(
                span_trace_events(
                    span_list, pid=2 * index + 1, label=f"scheduler: {run.label}"
                )
            )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"generator": "repro.obs", "runs": len(runs)},
    }


def write_trace(path, runs: Sequence[Any]) -> int:
    """Write the Perfetto-openable trace for ``runs``; returns event count."""
    document = trace_event_document(runs)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle)
    return len(document["traceEvents"])


def metrics_json(snapshot: Dict[str, Any], path=None) -> str:
    """Serialize a registry snapshot as stable flat JSON (optionally to a
    file)."""
    text = json.dumps(snapshot, indent=2, sort_keys=True, default=float)
    if path is not None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
    return text


# -- Prometheus / OpenMetrics ------------------------------------------------

_METRIC_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str) -> str:
    """Sanitize a dotted registry name into a Prometheus metric name."""
    sanitized = _METRIC_NAME_OK.sub("_", name)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return "repro_" + sanitized


def _prom_labels(labels: Optional[Dict[str, Any]]) -> str:
    if not labels:
        return ""
    parts = []
    for key, value in sorted(labels.items()):
        text = str(value).replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")
        parts.append(f'{_METRIC_NAME_OK.sub("_", key)}="{text}"')
    return "{" + ",".join(parts) + "}"


def _prom_value(value: Any) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "NaN"
        if value in (float("inf"), float("-inf")):
            return "+Inf" if value > 0 else "-Inf"
    return repr(float(value)) if isinstance(value, float) else str(value)


def prometheus_text(snapshot: Dict[str, Any], labels: Optional[Dict[str, Any]] = None) -> str:
    """Render a flat registry snapshot in Prometheus text exposition format.

    Integer values emit as ``counter``, floats as ``gauge``, histogram
    snapshot dicts as ``histogram`` with cumulative ``_bucket{le=...}``
    series plus ``_sum``/``_count`` — the standard scrape shape, so the
    files :func:`write_metrics_snapshot` drops are directly usable as
    Prometheus textfile-collector input. Names are prefixed ``repro_`` and
    dots become underscores (``store.hits`` -> ``repro_store_hits``).
    """
    label_text = _prom_labels(labels)
    lines: List[str] = []
    for name in sorted(snapshot):
        value = snapshot[name]
        prom = _prom_name(name)
        if isinstance(value, dict):
            lines.append(f"# TYPE {prom} histogram")
            cumulative = 0
            bounds = list(value.get("bounds", []))
            buckets = list(value.get("buckets", []))
            for index, bound in enumerate(bounds):
                cumulative += buckets[index] if index < len(buckets) else 0
                bucket_labels = dict(labels or {})
                bucket_labels["le"] = _prom_value(float(bound))
                lines.append(f"{prom}_bucket{_prom_labels(bucket_labels)} {cumulative}")
            inf_labels = dict(labels or {})
            inf_labels["le"] = "+Inf"
            lines.append(f"{prom}_bucket{_prom_labels(inf_labels)} {value.get('count', 0)}")
            lines.append(f"{prom}_sum{label_text} {_prom_value(float(value.get('sum') or 0.0))}")
            lines.append(f"{prom}_count{label_text} {value.get('count', 0)}")
        elif isinstance(value, bool):
            lines.append(f"# TYPE {prom} gauge")
            lines.append(f"{prom}{label_text} {int(value)}")
        elif isinstance(value, int):
            lines.append(f"# TYPE {prom} counter")
            lines.append(f"{prom}{label_text} {value}")
        else:
            lines.append(f"# TYPE {prom} gauge")
            lines.append(f"{prom}{label_text} {_prom_value(float(value))}")
    return "\n".join(lines) + ("\n" if lines else "")


def write_metrics_snapshot(
    directory,
    snapshot: Optional[Dict[str, Any]] = None,
    labels: Optional[Dict[str, Any]] = None,
) -> "Path":
    """Atomically drop this process's metrics under ``directory``.

    Writes ``metrics-<pid>.prom`` (Prometheus text) and ``metrics-<pid>.json``
    (the raw snapshot, for exact merging) via write-temp-then-rename, so a
    scraper or ``repro top`` never reads a half-written file. ``snapshot``
    defaults to :func:`~repro.obs.registry.process_metrics_snapshot` — every
    process-global registry this process knows. Forked pool workers calling
    this land per-worker files (the pid is in the name), which is what makes
    ``repro service drain --metrics-dir`` leave one artifact per worker.
    Returns the ``.prom`` path.
    """
    from repro.obs.registry import process_metrics_snapshot

    if snapshot is None:
        snapshot = process_metrics_snapshot()
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    pid = os.getpid()
    merged_labels = dict(labels or {})
    merged_labels.setdefault("pid", pid)
    payload = {
        "schema": "repro-metrics/1",
        "pid": pid,
        "ts": time.time(),
        "labels": {k: str(v) for k, v in merged_labels.items()},
        "metrics": snapshot,
    }
    for suffix, text in (
        (".prom", prometheus_text(snapshot, labels=merged_labels)),
        (".json", json.dumps(payload, sort_keys=True, default=float) + "\n"),
    ):
        final = directory / f"metrics-{pid}{suffix}"
        scratch = directory / f".metrics-{pid}{suffix}.tmp"
        with open(scratch, "w", encoding="utf-8") as handle:
            handle.write(text)
        os.replace(scratch, final)
    return directory / f"metrics-{pid}.prom"


def read_metrics_snapshots(directory) -> List[Dict[str, Any]]:
    """Every per-process ``metrics-*.json`` payload under ``directory``,
    sorted by pid; unreadable/half-written files are skipped."""
    directory = Path(directory)
    payloads: List[Dict[str, Any]] = []
    try:
        names = sorted(p for p in directory.iterdir() if p.name.startswith("metrics-")
                       and p.suffix == ".json")
    except (FileNotFoundError, NotADirectoryError):
        return []
    for path in names:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            continue
        if isinstance(payload, dict) and isinstance(payload.get("metrics"), dict):
            payloads.append(payload)
    return payloads


class MetricsExporter:
    """Throttled periodic snapshot writer (``--metrics-dir``).

    Call :meth:`tick` from any convenient loop — the pool's completion
    handler, a worker's cell boundary, the dispatcher's drain loop. Writes
    are rate-limited to one per ``interval`` seconds per process, plus a
    final unconditional write from :meth:`flush`. The object is fork-
    friendly: a child inherits the configuration but the first tick in a
    new pid discards the inherited throttle (else a short-lived worker
    could die inside the parent's interval and leave no artifact) and
    registers an exit-time flush, so every worker leaves one final
    ``metrics-<pid>`` snapshot with its complete counters.
    """

    __slots__ = ("directory", "interval", "labels", "_last", "_pid")

    def __init__(self, directory, interval: float = 1.0,
                 labels: Optional[Dict[str, Any]] = None):
        self.directory = Path(directory)
        self.interval = float(interval)
        self.labels = dict(labels or {})
        self._last = 0.0
        self._pid = os.getpid()

    def tick(self) -> Optional["Path"]:
        if os.getpid() != self._pid:
            self._pid = os.getpid()
            self._last = 0.0
            atexit.register(self._exit_flush)
        now = time.monotonic()
        if now - self._last < self.interval:
            return None
        self._last = now
        return write_metrics_snapshot(self.directory, labels=self.labels)

    def _exit_flush(self) -> None:
        try:
            self.flush()
        except OSError:
            pass

    def flush(self) -> "Path":
        self._last = time.monotonic()
        return write_metrics_snapshot(self.directory, labels=self.labels)


_EXPORTER: Optional[MetricsExporter] = None


class _ExportState:
    """``EXPORT.active`` is the one-attribute-read guard exporter tick
    sites consult, mirroring the obs gate and the event-log switch."""

    __slots__ = ("active",)

    def __init__(self) -> None:
        self.active = False


EXPORT = _ExportState()


def start_metrics_exporter(
    directory, interval: float = 1.0, labels: Optional[Dict[str, Any]] = None
) -> MetricsExporter:
    """Arm the process-wide periodic exporter writing under ``directory``."""
    global _EXPORTER
    _EXPORTER = MetricsExporter(directory, interval=interval, labels=labels)
    EXPORT.active = True
    return _EXPORTER


def stop_metrics_exporter() -> None:
    """Write one final snapshot (if armed) and disarm."""
    global _EXPORTER
    exporter = _EXPORTER
    _EXPORTER = None
    EXPORT.active = False
    if exporter is not None:
        try:
            exporter.flush()
        except OSError:
            pass


def metrics_exporter() -> Optional[MetricsExporter]:
    """The armed exporter, or None."""
    return _EXPORTER


def reset_metrics_exporter() -> None:
    """Disarm without the final flush (test isolation: a teardown flush
    would resurrect already-deleted tmp directories)."""
    global _EXPORTER
    _EXPORTER = None
    EXPORT.active = False


def export_tick() -> None:
    """Throttled snapshot write if an exporter is armed; no-op otherwise."""
    if EXPORT.active and _EXPORTER is not None:
        try:
            _EXPORTER.tick()
        except OSError:
            pass


def _fmt_ns(ns: Optional[float]) -> str:
    if ns is None:
        return "-"
    if ns >= 1e6:
        return f"{ns / 1e6:.3f} ms"
    if ns >= 1e3:
        return f"{ns / 1e3:.3f} us"
    return f"{ns:.0f} ns"


def format_metrics(
    metrics: Dict[str, Any], span_summary: Optional[Dict[str, Dict[str, float]]] = None,
    title: str = "metrics",
) -> str:
    """Pretty-print one run's metrics snapshot (the ``stats`` subcommand).

    Histogram-valued metrics render as a count/p50/p95/max line; scalar
    metrics as plain ``name = value`` rows, grouped by dotted prefix.
    """
    lines = [f"[{title}]"]
    scalars = {k: v for k, v in sorted(metrics.items()) if not isinstance(v, dict)}
    histograms = {k: v for k, v in sorted(metrics.items()) if isinstance(v, dict)}
    group = None
    for name, value in scalars.items():
        prefix = name.split(".", 1)[0]
        if prefix != group:
            group = prefix
            lines.append(f"  {group}:")
        shown = f"{value:.4f}".rstrip("0").rstrip(".") if isinstance(value, float) else value
        lines.append(f"    {name} = {shown}")
    for name, snap in histograms.items():
        fmt = _fmt_ns if name.endswith("_ns") else (
            lambda v: "-" if v is None else f"{v:.2f}".rstrip("0").rstrip(".")
        )
        lines.append(f"  {name}:")
        lines.append(
            "    count={count}  p50={p50}  p95={p95}  max={vmax}  mean={mean}".format(
                count=snap.get("count", 0),
                p50=fmt(snap.get("p50")),
                p95=fmt(snap.get("p95")),
                vmax=fmt(snap.get("max")),
                mean=fmt(snap.get("mean")),
            )
        )
    if span_summary:
        lines.append("  spans:")
        for name, stats in span_summary.items():
            lines.append(
                f"    {name}: count={int(stats['count'])}  "
                f"total={_fmt_ns(stats['total_ns'])}  mean={_fmt_ns(stats['mean_ns'])}  "
                f"recorded={int(stats['recorded'])}"
            )
    return "\n".join(lines)
