"""``repro.obs`` — the shared observability layer.

One lightweight, zero-dependency substrate used by the simulator engine,
the scheduler policies, the schedulability memo, and the campaign runner:

- :mod:`repro.obs.registry` — counters / gauges / fixed-bucket histograms,
  cheap enough to stay on in the per-quantum decide hot path;
- :mod:`repro.obs.spans` — bounded, sampled wall-time span tracing anchored
  to simulated time;
- :mod:`repro.obs.export` — Chrome/Perfetto ``trace_event`` JSON (schedule
  lanes + scheduler-internal spans) and flat metrics JSON.

Everything is **off by default**: until :func:`enable` flips the module-
level gate, every instrumented call is a no-op attribute access (the bench
guard in ``benchmarks/test_bench_obs_overhead.py`` holds that cost to a few
percent of a decide). Enabling never touches any simulation RNG, so runs
are bit-identical with observability off, on, or sampled
(``tests/integration/test_obs_differential.py``).

Typical use::

    import repro.obs as obs

    obs.enable()
    capture = obs.start_trace_capture()
    sim = Simulator(system, policy="timedice", seed=3)
    result = sim.run_for_ms(300)
    print(obs.format_metrics(result.metrics, sim.obs.spans.summary()))
    obs.export.write_trace("trace.json", obs.stop_trace_capture())
    obs.disable()

See ``docs/OBSERVABILITY.md`` for the full tour.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.obs import console, events, export
from repro.obs.console import gather_fleet_state, render_top
from repro.obs.events import (
    EVENT_SCHEMA,
    EVENTS,
    EventLog,
    bound_context,
    disable_event_log,
    enable_event_log,
    event_log,
    read_events,
    set_context,
)
from repro.obs.events import emit as emit_event
from repro.obs.gate import (
    DEFAULT_SAMPLE_EVERY,
    DEFAULT_SPAN_CAPACITY,
    DEFAULT_WARMUP,
    GATE,
)
from repro.obs.export import (
    MetricsExporter,
    export_tick,
    format_metrics,
    metrics_exporter,
    metrics_json,
    prometheus_text,
    read_metrics_snapshots,
    start_metrics_exporter,
    stop_metrics_exporter,
    write_metrics_snapshot,
    write_trace,
)
from repro.obs.registry import (
    DEFAULT_BOUNDS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_histogram_snapshots,
    merge_registry_snapshots,
    process_metrics_snapshot,
    register_process_registry,
)
from repro.obs.spans import Span, SpanBuffer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsExporter",
    "RunObs",
    "Span",
    "SpanBuffer",
    "CapturedRun",
    "enable",
    "disable",
    "is_enabled",
    "format_metrics",
    "merge_histogram_snapshots",
    "merge_registry_snapshots",
    "process_metrics_snapshot",
    "register_process_registry",
    "metrics_json",
    "prometheus_text",
    "write_metrics_snapshot",
    "read_metrics_snapshots",
    "start_metrics_exporter",
    "stop_metrics_exporter",
    "metrics_exporter",
    "export_tick",
    "write_trace",
    "start_trace_capture",
    "stop_trace_capture",
    "trace_capture",
    "drain_run_log",
    "decide_rollup",
    "faults_rollup",
    "runs_snapshot",
    "events",
    "EventLog",
    "EVENTS",
    "EVENT_SCHEMA",
    "enable_event_log",
    "disable_event_log",
    "event_log",
    "emit_event",
    "read_events",
    "set_context",
    "bound_context",
    "export",
    "console",
    "gather_fleet_state",
    "render_top",
    "GATE",
]


def enable(
    sample_every: Optional[int] = None,
    warmup: Optional[int] = None,
    span_capacity: Optional[int] = None,
) -> None:
    """Turn instrumentation on process-wide.

    ``sample_every`` / ``warmup`` / ``span_capacity`` override the defaults
    new :class:`SpanBuffer` instances pick up (existing buffers keep their
    construction-time settings).
    """
    if sample_every is not None:
        GATE.sample_every = max(1, int(sample_every))
    if warmup is not None:
        GATE.warmup = max(0, int(warmup))
    if span_capacity is not None:
        GATE.span_capacity = max(0, int(span_capacity))
    GATE.enabled = True


def disable() -> None:
    """Turn instrumentation off and restore default sampling knobs."""
    GATE.enabled = False
    GATE.sample_every = DEFAULT_SAMPLE_EVERY
    GATE.warmup = DEFAULT_WARMUP
    GATE.span_capacity = DEFAULT_SPAN_CAPACITY


def is_enabled() -> bool:
    return GATE.enabled


# -- per-run scope ----------------------------------------------------------

#: Bound on remembered finished run scopes (the campaign-worker rollup
#: drains this; the bound only matters if nobody drains).
_RUN_LOG_LIMIT = 64

_RUN_LOG: List["RunObs"] = []


class RunObs:
    """One run's observability scope: a metrics registry plus a span buffer.

    The engine builds one per :class:`~repro.sim.engine.Simulator` and hands
    it down to the policy and memo via their ``attach_obs`` hooks, so
    interleaved simulations (pause/resume, nested experiments) never share
    mutable metric state. While the gate is on, freshly created scopes are
    also remembered in a bounded process-level log, which is how campaign
    workers roll each cell's decide latencies up into
    :class:`~repro.runner.telemetry.CampaignTelemetry`.
    """

    __slots__ = ("label", "registry", "spans")

    def __init__(self, label: str = "run"):
        self.label = label
        self.registry = MetricsRegistry(label)
        self.spans = SpanBuffer()
        if GATE.enabled:
            _RUN_LOG.append(self)
            if len(_RUN_LOG) > _RUN_LOG_LIMIT:
                del _RUN_LOG[0]


def drain_run_log() -> List[RunObs]:
    """Return and clear the scopes created since the last drain."""
    drained = list(_RUN_LOG)
    _RUN_LOG.clear()
    return drained


def decide_rollup(runs: Sequence[RunObs]) -> Optional[Dict[str, Any]]:
    """Merge the ``decide.wall_ns`` histograms of ``runs`` into one snapshot.

    Returns None when no run observed any decide (obs disabled, or no
    simulation happened) so callers can skip the key entirely.
    """
    snapshots = []
    for run in runs:
        histogram = run.registry._histograms.get("decide.wall_ns")
        if histogram is not None and histogram.count:
            snapshots.append(histogram.snapshot())
    if not snapshots:
        return None
    return merge_histogram_snapshots(snapshots)


def runs_snapshot(runs: Sequence[RunObs]) -> Optional[Dict[str, Any]]:
    """Merge the full registry snapshots of ``runs`` into one flat dict.

    What a pool worker ships back with each cell result so the campaign
    parent can rebuild *exact* rollups under ``--jobs N``: counters sum,
    histograms merge bucket-wise (:func:`merge_registry_snapshots`).
    Returns None when there is nothing to ship (obs disabled, or no runs).
    """
    snapshots = [run.registry.snapshot() for run in runs]
    merged = merge_registry_snapshots(snapshots)
    return merged or None


def faults_rollup(runs: Sequence[RunObs]) -> Optional[Dict[str, int]]:
    """Sum the gated ``faults.*`` counters of ``runs`` into one dict.

    The campaign-worker companion of :func:`decide_rollup`: workers drain
    the run log once and compute both. Returns None when no run ticked any
    fault counter (obs disabled, no plan attached, or a null plan) so
    callers can skip the key entirely.
    """
    totals: Dict[str, int] = {}
    for run in runs:
        for name, counter in run.registry._counters.items():
            if name.startswith("faults.") and counter.value:
                totals[name] = totals.get(name, 0) + counter.value
    if not totals:
        return None
    totals["faults.total"] = sum(totals.values())
    return totals


# -- trace capture ----------------------------------------------------------


@dataclass
class CapturedRun:
    """One simulation registered with the active trace capture."""

    label: str
    partitions: List[str]
    segments: Any  # object with a ``segments`` list, or the list itself
    obs: Optional[RunObs] = None

    @property
    def spans(self):
        return self.obs.spans.spans if self.obs is not None else []


@dataclass
class TraceCapture:
    """Collects every Simulator created while active (``--trace-out``).

    The engine checks :func:`trace_capture` at construction time and, when
    one is active with room, attaches a bounded ``SegmentRecorder`` and
    registers itself — which is what makes ``--trace-out`` work uniformly
    for *any* sim-backed CLI subcommand without threading a flag through
    every experiment module.

    ``owner_pid`` records the process that started the capture. A forked
    pool worker inherits the capture object but its registrations can never
    reach the parent's trace file, so the pool drops worker-side runs and
    ticks the gated ``trace.worker_runs_dropped`` counter instead of
    silently writing spans nobody collects
    (``tests/integration/test_trace_campaign.py`` pins this).
    """

    segment_limit: int = 250_000
    max_runs: int = 16
    runs: List[CapturedRun] = field(default_factory=list)
    owner_pid: int = field(default_factory=os.getpid)

    def has_room(self) -> bool:
        return len(self.runs) < self.max_runs

    def register(self, run: CapturedRun) -> None:
        if self.has_room():
            self.runs.append(run)


_CAPTURE: Optional[TraceCapture] = None


def start_trace_capture(
    segment_limit: int = 250_000, max_runs: int = 16
) -> TraceCapture:
    """Begin capturing every subsequently constructed Simulator."""
    global _CAPTURE
    _CAPTURE = TraceCapture(segment_limit=segment_limit, max_runs=max_runs)
    return _CAPTURE


def stop_trace_capture() -> List[CapturedRun]:
    """End the capture and return the registered runs."""
    global _CAPTURE
    capture = _CAPTURE
    _CAPTURE = None
    return capture.runs if capture is not None else []


def trace_capture() -> Optional[TraceCapture]:
    """The active capture, or None."""
    return _CAPTURE
