"""The metrics registry: counters, gauges, fixed-bucket histograms.

Design constraints, in order:

1. **Hot-path cost.** ``Counter.inc`` and ``Histogram.observe`` sit inside
   the engine's per-quantum decide loop. Both are guarded by
   :data:`~repro.obs.gate.GATE` — disabled, they cost one attribute read and
   one branch; enabled, a counter is one integer add and a histogram one
   ``bisect`` into a fixed bound list.
2. **Zero dependencies.** Plain stdlib; snapshots are JSON-serializable
   dicts so they cross process boundaries (campaign workers) and merge into
   :class:`~repro.sim.engine.SimulationResult` without ceremony.
3. **Per-run scoping.** A :class:`MetricsRegistry` is cheap enough to build
   one per :class:`~repro.sim.engine.Simulator`; nothing here is global
   except the gate. Merging across runs happens on *snapshots*
   (:func:`merge_histogram_snapshots`), never on live objects.

Histograms use fixed geometric buckets (default: powers of two from 256 ns
to ~67 ms — decide latencies land mid-range) plus exact count/sum/min/max,
so p50/p95 come from bucket interpolation with exact-extremum clamping.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.obs.gate import GATE

#: Default histogram bounds: 2^8 .. 2^26 ns. A value lands in the first
#: bucket whose bound is >= value; values beyond the last bound go to the
#: overflow bucket.
DEFAULT_BOUNDS: Tuple[int, ...] = tuple(2**k for k in range(8, 27))


class Counter:
    """A monotonically increasing integer, gated on :data:`GATE.enabled`."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        if GATE.enabled:
            self.value += n

    def add_always(self, n: int) -> None:
        """Ungated add — for folding externally accumulated exact counters
        (e.g. :class:`~repro.core.memo.MemoStats`) into a snapshot."""
        self.value += n


class Gauge:
    """A last-write-wins float, gated on :data:`GATE.enabled`."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        if GATE.enabled:
            self.value = float(value)


class Histogram:
    """Fixed-bucket histogram with exact count/sum/min/max.

    ``bounds`` must be sorted ascending; bucket ``i`` counts observations
    ``<= bounds[i]`` (first match), with one extra overflow bucket past the
    last bound.
    """

    __slots__ = ("name", "bounds", "buckets", "count", "total", "vmin", "vmax")

    def __init__(self, name: str, bounds: Sequence[float] = DEFAULT_BOUNDS):
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError(f"histogram bounds must be sorted non-empty, got {bounds!r}")
        self.name = name
        self.bounds = tuple(bounds)
        self.buckets = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.vmin: Optional[float] = None
        self.vmax: Optional[float] = None

    def observe(self, value: float) -> None:
        if not GATE.enabled:
            return
        self.buckets[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if self.vmin is None or value < self.vmin:
            self.vmin = value
        if self.vmax is None or value > self.vmax:
            self.vmax = value

    def percentile(self, q: float) -> float:
        """Bucket-interpolated quantile ``q`` in [0, 1], clamped to the
        exact observed min/max (so p0/p100 are exact)."""
        return _bucket_percentile(
            self.bounds, self.buckets, self.count, self.vmin, self.vmax, q
        )

    def snapshot(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.vmin,
            "max": self.vmax,
            "mean": (self.total / self.count) if self.count else None,
            "p50": self.percentile(0.50) if self.count else None,
            "p95": self.percentile(0.95) if self.count else None,
            "bounds": list(self.bounds),
            "buckets": list(self.buckets),
        }


def _bucket_percentile(
    bounds: Sequence[float],
    buckets: Sequence[int],
    count: int,
    vmin: Optional[float],
    vmax: Optional[float],
    q: float,
) -> float:
    if count <= 0:
        return float("nan")
    q = min(1.0, max(0.0, q))
    target = q * count
    cumulative = 0
    for index, bucket_count in enumerate(buckets):
        if bucket_count == 0:
            continue
        if cumulative + bucket_count >= target:
            lo = bounds[index - 1] if index > 0 else 0.0
            hi = bounds[index] if index < len(bounds) else (vmax if vmax is not None else lo)
            fraction = (target - cumulative) / bucket_count
            value = lo + (hi - lo) * fraction
            if vmin is not None:
                value = max(value, vmin)
            if vmax is not None:
                value = min(value, vmax)
            return value
        cumulative += bucket_count
    return vmax if vmax is not None else float("nan")


def merge_histogram_snapshots(snapshots: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """Fold histogram :meth:`Histogram.snapshot` dicts into one.

    All inputs must share the same ``bounds`` (they do, for a given metric
    name). The merged p50/p95 are recomputed from the summed buckets — this
    is what gives campaign telemetry its cross-cell decide-latency rollup.
    """
    snapshots = [s for s in snapshots if s and s.get("count")]
    if not snapshots:
        return {"count": 0, "sum": 0.0, "min": None, "max": None, "mean": None,
                "p50": None, "p95": None, "bounds": [], "buckets": []}
    bounds = snapshots[0]["bounds"]
    for s in snapshots[1:]:
        if s["bounds"] != bounds:
            raise ValueError("cannot merge histograms with differing bounds")
    buckets = [0] * (len(bounds) + 1)
    count = 0
    total = 0.0
    vmin: Optional[float] = None
    vmax: Optional[float] = None
    for s in snapshots:
        for i, c in enumerate(s["buckets"]):
            buckets[i] += c
        count += s["count"]
        total += s["sum"]
        if s["min"] is not None:
            vmin = s["min"] if vmin is None else min(vmin, s["min"])
        if s["max"] is not None:
            vmax = s["max"] if vmax is None else max(vmax, s["max"])
    return {
        "count": count,
        "sum": total,
        "min": vmin,
        "max": vmax,
        "mean": total / count if count else None,
        "p50": _bucket_percentile(bounds, buckets, count, vmin, vmax, 0.50),
        "p95": _bucket_percentile(bounds, buckets, count, vmin, vmax, 0.95),
        "bounds": list(bounds),
        "buckets": buckets,
    }


def merge_registry_snapshots(
    snapshots: Sequence[Dict[str, Any]],
) -> Dict[str, Any]:
    """Fold flat :meth:`MetricsRegistry.snapshot` dicts into one.

    The cross-worker merge rule the fleet rollup relies on
    (``CampaignTelemetry`` merging per-worker snapshots shipped back with
    each pool result): integer values (counters) **sum**, histogram dicts
    merge bucket-wise via :func:`merge_histogram_snapshots`, and float
    values (gauges) keep the last write, matching single-process gauge
    semantics. A name may not change shape across snapshots.
    """
    merged: Dict[str, Any] = {}
    pending_histograms: Dict[str, List[Dict[str, Any]]] = {}
    for snapshot in snapshots:
        if not snapshot:
            continue
        for name, value in snapshot.items():
            if isinstance(value, dict):
                pending_histograms.setdefault(name, []).append(value)
            elif isinstance(value, bool):
                raise ValueError(f"metric {name!r} has non-mergeable bool value")
            elif isinstance(value, int):
                previous = merged.get(name, 0)
                if isinstance(previous, float):
                    raise ValueError(f"metric {name!r} changes shape across snapshots")
                merged[name] = previous + value
            elif isinstance(value, float):
                merged[name] = value
            else:
                raise ValueError(
                    f"metric {name!r} has non-mergeable value {value!r}"
                )
    for name, parts in pending_histograms.items():
        if name in merged:
            raise ValueError(f"metric {name!r} changes shape across snapshots")
        merged[name] = merge_histogram_snapshots(parts)
    return merged


class MetricsRegistry:
    """A named bag of metrics with get-or-create accessors.

    One registry per run scope (the engine builds one per
    :class:`~repro.sim.engine.Simulator`); :meth:`snapshot` flattens it to a
    plain dict keyed by metric name.
    """

    def __init__(self, scope: str = "run"):
        self.scope = scope
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge(name)
        return metric

    def histogram(
        self, name: str, bounds: Sequence[float] = DEFAULT_BOUNDS
    ) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = Histogram(name, bounds)
        return metric

    def snapshot(self) -> Dict[str, Any]:
        """Flat ``{name: value-or-histogram-dict}`` of every metric.

        Zero-valued counters and empty histograms are kept — a snapshot
        always has a stable key set for a given instrumentation surface.
        """
        out: Dict[str, Any] = {}
        for name, counter in self._counters.items():
            out[name] = counter.value
        for name, gauge in self._gauges.items():
            out[name] = gauge.value
        for name, histogram in self._histograms.items():
            out[name] = histogram.snapshot()
        return out

    def reset(self) -> None:
        for counter in self._counters.values():
            counter.value = 0
        for gauge in self._gauges.values():
            gauge.value = 0.0
        for name, histogram in list(self._histograms.items()):
            self._histograms[name] = Histogram(name, histogram.bounds)


#: Every long-lived, process-global registry (pool, store, service, batch)
#: registers itself here at import time, which is what lets the metrics
#: exporter snapshot "everything this process knows" without hard-coding a
#: module list. Per-run registries (:class:`~repro.obs.RunObs`) stay out —
#: they are scoped and drained, not process state.
_PROCESS_REGISTRIES: List[MetricsRegistry] = []


def register_process_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Enroll ``registry`` in the process-wide roster; returns it, so
    definition sites read ``X = register_process_registry(MetricsRegistry(s))``."""
    _PROCESS_REGISTRIES.append(registry)
    return registry


def process_registries() -> List[MetricsRegistry]:
    """The enrolled registries, in registration order."""
    return list(_PROCESS_REGISTRIES)


def process_metrics_snapshot() -> Dict[str, Any]:
    """One flat snapshot of every enrolled registry.

    Metric names are disjoint across registries by convention (``pool.*``,
    ``store.*``, ``service.*``, ``batch.*``); a collision merges by the
    :func:`merge_registry_snapshots` rules rather than erroring, so a
    stray duplicate name degrades to a summed counter, not a crash.
    """
    return merge_registry_snapshots([r.snapshot() for r in _PROCESS_REGISTRIES])
