"""The module-level on/off switch every instrumentation site consults.

Kept in its own tiny module so the hot paths (``Counter.inc``, the engine's
decide loop, the memo's ``prepare``) can do ``from repro.obs.gate import
GATE`` once at import time and then pay exactly one attribute read per
check. When the gate is off, every instrumented call degrades to that read
plus a branch — the "no-op attribute call" contract the decide micro-bench
guards (``benchmarks/test_bench_obs_overhead.py``).

Nothing in here imports anything from :mod:`repro`, which keeps the
observability layer import-cycle-free: ``repro.core`` and ``repro.sim``
both instrument themselves against this gate.
"""

from __future__ import annotations

#: Default per-name warmup: the first WARMUP spans of every span name are
#: always recorded, so short runs (quick CLI figures, unit tests) see every
#: span even under aggressive sampling.
DEFAULT_WARMUP = 5000

#: After the warmup cap, record 1-in-SAMPLE_EVERY spans per name.
DEFAULT_SAMPLE_EVERY = 16

#: Upper bound on buffered spans per :class:`~repro.obs.spans.SpanBuffer`.
DEFAULT_SPAN_CAPACITY = 200_000


class _Gate:
    """Mutable singleton holding the global observability configuration."""

    __slots__ = ("enabled", "sample_every", "warmup", "span_capacity")

    def __init__(self) -> None:
        self.enabled = False
        self.sample_every = DEFAULT_SAMPLE_EVERY
        self.warmup = DEFAULT_WARMUP
        self.span_capacity = DEFAULT_SPAN_CAPACITY


#: The process-wide gate. Flip through :func:`repro.obs.enable` /
#: :func:`repro.obs.disable` rather than poking the attribute directly.
GATE = _Gate()
