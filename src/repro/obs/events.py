"""Structured fleet event log: append-only JSON-lines, one line per event.

The third leg of :mod:`repro.obs`, next to the metrics registry and span
tracing: a **durable, streaming** record of what the fleet *did* — cells
started/retried/timed out, batch groups formed and dissolved, store hits
and corruptions, service tickets claimed and drained. Where the registry
answers "how much / how fast", the event log answers "what happened, in
what order, on which worker" — and it survives the process, so a drainer
on another host (ROADMAP item 2) can be audited after the fact.

Records follow the journal's append discipline
(:mod:`repro.service.journal`): each event is a single ``os.write`` of one
JSON line to an ``O_APPEND`` descriptor, so concurrent writers — the pool
parent and its forked workers share one inherited descriptor — interleave
at record granularity and a SIGKILL can at worst tear the final line,
which :func:`read_events` tolerates by skipping it.

Every record carries::

    {"v": 1, "seq": 17, "pid": 4242, "ts": 1699.25, "kind": "cell.complete",
     <correlation ids from the ambient context>, <event fields>}

- ``v`` — :data:`EVENT_SCHEMA`, bumped on incompatible encoding changes.
- ``seq`` — per-process monotonic sequence number, re-armed from 0 in
  forked children, so ``(pid, seq)`` totally orders one process's events
  and gaps expose lost records.
- ``ts`` — ``time.time()`` at emit, for cells/sec and ETA math only;
  ordering claims always come from ``(pid, seq)``.
- Correlation ids (``campaign``, ``cell``, ``ticket``, ``run`` — whatever
  :func:`set_context` has bound) tie events across layers: a worker binds
  its cell key once and every store/engine event it emits carries it.

Everything is **off by default** and gated exactly like the metrics
registry: until :func:`enable_event_log` arms :data:`EVENTS`, every
:func:`emit` call is one attribute read plus a branch
(``benchmarks/test_bench_events_overhead.py`` holds the disabled cost, and
``tests/integration/test_fleet_obs.py`` proves disabled runs bit-identical).
Emitting never touches any simulation RNG.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Set, Union

#: Bumped if the record encoding changes incompatibly.
EVENT_SCHEMA = 1


class _EventsState:
    """Mutable singleton the hot emit sites consult.

    Mirrors :class:`repro.obs.gate._Gate`: instrumented call sites do
    ``from repro.obs.events import EVENTS`` once at import time and pay one
    attribute read per event when the log is off.
    """

    __slots__ = ("active",)

    def __init__(self) -> None:
        self.active = False


#: The process-wide event-log switch. Flip through
#: :func:`enable_event_log` / :func:`disable_event_log`.
EVENTS = _EventsState()


class EventLog:
    """Append-only JSON-lines event sink with per-process sequence numbers."""

    __slots__ = ("path", "_fd", "_pid", "_seq")

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self._fd: Optional[int] = None
        self._pid = os.getpid()
        self._seq = 0

    def _descriptor(self) -> int:
        if self._fd is None:
            if self.path.parent != Path("."):
                self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fd = os.open(
                str(self.path), os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
            )
        return self._fd

    def emit(self, kind: str, **fields: Any) -> None:
        """Atomically append one event (single ``write`` of one line).

        A forked child inherits this object with the parent's pid and
        sequence counter; the first emit from the child detects the pid
        change and restarts ``seq`` at 1, so ``(pid, seq)`` stays a valid
        per-process order. The inherited ``O_APPEND`` descriptor is kept —
        appends from parent and children interleave at line granularity.
        """
        pid = os.getpid()
        if pid != self._pid:
            self._pid = pid
            self._seq = 0
        self._seq += 1
        record: Dict[str, Any] = {
            "v": EVENT_SCHEMA,
            "seq": self._seq,
            "pid": pid,
            "ts": time.time(),
            "kind": kind,
        }
        if _CONTEXT:
            record.update(_CONTEXT)
        if fields:
            record.update(fields)
        line = json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
        os.write(self._descriptor(), line.encode("utf-8"))

    def close(self) -> None:
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None


_LOG: Optional[EventLog] = None

#: Ambient correlation ids folded into every emitted record. Forked pool
#: workers inherit the parent's bindings (campaign id) and layer their own
#: (cell key) on top via :func:`bound_context`.
_CONTEXT: Dict[str, Any] = {}


def enable_event_log(path: Union[str, Path]) -> EventLog:
    """Open (or append to) ``path`` and start emitting events process-wide."""
    global _LOG
    if _LOG is not None:
        _LOG.close()
    _LOG = EventLog(path)
    EVENTS.active = True
    return _LOG


def disable_event_log() -> None:
    """Stop emitting, close the sink, and drop the ambient context."""
    global _LOG
    EVENTS.active = False
    if _LOG is not None:
        _LOG.close()
        _LOG = None
    _CONTEXT.clear()


def event_log() -> Optional[EventLog]:
    """The active sink, or None."""
    return _LOG


def emit(kind: str, **fields: Any) -> None:
    """Emit one event if the log is active; a gated no-op otherwise.

    Call sites that sit on hot paths should guard with ``EVENTS.active``
    themselves to skip field construction; this function re-checks so
    un-guarded call sites stay correct.
    """
    if EVENTS.active and _LOG is not None:
        _LOG.emit(kind, **fields)


def set_context(**ids: Any) -> None:
    """Bind correlation ids into every subsequent record.

    ``None`` values unbind their key; everything else is stored as-is
    (values must be JSON-serializable).
    """
    for key, value in ids.items():
        if value is None:
            _CONTEXT.pop(key, None)
        else:
            _CONTEXT[key] = value


def clear_context() -> None:
    """Unbind every correlation id."""
    _CONTEXT.clear()


@contextmanager
def bound_context(**ids: Any) -> Iterator[None]:
    """Bind correlation ids for the duration of a ``with`` block,
    restoring the previous bindings (including absences) on exit."""
    saved = {key: _CONTEXT.get(key, _MISSING) for key in ids}
    set_context(**ids)
    try:
        yield
    finally:
        for key, value in saved.items():
            if value is _MISSING:
                _CONTEXT.pop(key, None)
            else:
                _CONTEXT[key] = value


_MISSING = object()


# -- reading ----------------------------------------------------------------


def read_events(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Every decodable event in ``path``, in file order (torn lines skipped).

    Tolerates a missing file (returns ``[]``) and the torn final line a
    SIGKILL can leave, exactly like the campaign journal's replay.
    """
    records: List[Dict[str, Any]] = []
    try:
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    continue
                if isinstance(record, dict):
                    records.append(record)
    except FileNotFoundError:
        pass
    return records


def completed_cell_keys(path: Union[str, Path]) -> Set[str]:
    """The set of cell keys with a ``cell.complete`` event in ``path``.

    The replay half of the events-vs-journal differential: an enabled
    event log must name exactly the cells the campaign journal records as
    completed (``tests/integration/test_fleet_obs.py``).
    """
    keys: Set[str] = set()
    for record in read_events(path):
        if record.get("kind") == "cell.complete" and record.get("cell"):
            keys.add(str(record["cell"]))
    return keys
