"""The fleet console: fold status files, event logs, and metrics snapshots
into one live text dashboard (``repro top``).

Three artifact families feed one frame:

- **Service status files** (``<root>/queue|active|done``, plus the
  drainer's atomic ``*.status.json``) give ticket-level state: what is
  queued, what a drainer is running right now, per-campaign done/total
  and ETA.
- **The event log** (``--events-out``) gives fleet dynamics: per-campaign
  completion counts, a cells/sec rate over a sliding window, store
  hit/miss traffic, retries/timeouts/failures, batch groups formed and
  dissolved.
- **Metrics snapshot files** (``--metrics-dir``) give per-worker health:
  one ``metrics-<pid>.json`` per process that ever ticked the exporter,
  with a freshness age derived from the snapshot's own timestamp.

Everything is read-only and tolerant: every source is optional, a frame
renders from whatever exists, and half-written files are skipped (the
writers are all atomic, so that only happens for foreign junk). The
gathering half (:func:`gather_fleet_state`) returns plain data and the
rendering half (:func:`render_top`) returns a string, so tests pin frames
without a terminal.
"""

from __future__ import annotations

import os
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.obs.events import read_events
from repro.obs.export import read_metrics_snapshots
from repro.obs.registry import merge_registry_snapshots

#: Sliding window (seconds of event time) for the cells/sec rate.
RATE_WINDOW_S = 30.0

#: A worker snapshot older than this (seconds) renders as stale.
STALE_AFTER_S = 15.0

#: Tail size read from the event log per frame; old history beyond this is
#: irrelevant to a live dashboard and skipping it keeps frames O(1).
_TAIL_BYTES = 1 << 20


def _tail_events(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """The last ~:data:`_TAIL_BYTES` of decodable events in ``path``.

    Small files go through :func:`read_events` verbatim; for big ones we
    seek to the tail and drop the first (possibly torn) line.
    """
    try:
        size = os.path.getsize(path)
    except OSError:
        return []
    if size <= _TAIL_BYTES:
        return read_events(path)
    import json

    records: List[Dict[str, Any]] = []
    with open(path, "rb") as handle:
        handle.seek(size - _TAIL_BYTES)
        chunk = handle.read()
    for line in chunk.split(b"\n")[1:]:
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            continue
        if isinstance(record, dict):
            records.append(record)
    return records


def _campaign_stats(events: List[Dict[str, Any]]) -> Dict[str, Dict[str, Any]]:
    """Per-campaign progress derived from the event tail."""
    campaigns: Dict[str, Dict[str, Any]] = {}

    def entry(name: Any) -> Dict[str, Any]:
        key = str(name) if name else "?"
        return campaigns.setdefault(
            key,
            {
                "total": None, "done": 0, "cached": 0, "failed": 0,
                "retries": 0, "timeouts": 0, "complete_ts": [],
            },
        )

    for record in events:
        kind = record.get("kind")
        if kind == "campaign.begin":
            item = entry(record.get("campaign"))
            item["total"] = record.get("total")
            # A fresh begin restarts the campaign's counters: the tail may
            # span several invocations of the same target.
            item.update(done=0, cached=0, failed=0, retries=0, timeouts=0)
            item["complete_ts"] = []
        elif kind == "cell.complete":
            item = entry(record.get("campaign"))
            item["done"] += 1
            ts = record.get("ts")
            if isinstance(ts, (int, float)):
                item["complete_ts"].append(float(ts))
        elif kind == "cell.cached":
            item = entry(record.get("campaign"))
            item["done"] += 1
            item["cached"] += 1
        elif kind == "cell.failed":
            entry(record.get("campaign"))["failed"] += 1
        elif kind == "cell.retry":
            entry(record.get("campaign"))["retries"] += 1
        elif kind == "cell.timeout":
            entry(record.get("campaign"))["timeouts"] += 1
        elif kind == "campaign.end":
            item = entry(record.get("campaign"))
            item["total"] = record.get("done", item["total"])
            item["finished"] = True

    for item in campaigns.values():
        stamps = item.pop("complete_ts")
        rate = None
        if len(stamps) >= 2:
            horizon = max(stamps) - RATE_WINDOW_S
            recent = [ts for ts in stamps if ts >= horizon]
            span = max(recent) - min(recent)
            if span > 0:
                rate = (len(recent) - 1) / span
        item["cells_per_s"] = rate
        total = item.get("total")
        if rate and isinstance(total, int) and total > item["done"]:
            item["eta_s"] = (total - item["done"]) / rate
        else:
            item["eta_s"] = None
    return campaigns


def _cluster_stats(events: List[Dict[str, Any]]) -> Dict[str, Dict[str, Any]]:
    """Per-remote-worker rollups from the coordinator's ``cluster.*`` events.

    Keyed by worker name; `last_ts` is the newest event timestamp that
    mentioned the worker, which the gatherer turns into a last-seen age.
    """
    workers: Dict[str, Dict[str, Any]] = {}

    def entry(name: Any) -> Dict[str, Any]:
        key = str(name) if name else "?"
        return workers.setdefault(
            key,
            {"jobs": None, "leased": 0, "completed": 0, "stolen": 0,
             "heartbeats": 0, "last_ts": None},
        )

    for record in events:
        kind = record.get("kind")
        if not isinstance(kind, str) or not kind.startswith("cluster."):
            continue
        if "worker" not in record:
            continue
        item = entry(record.get("worker"))
        ts = record.get("ts")
        if isinstance(ts, (int, float)):
            last = item["last_ts"]
            item["last_ts"] = float(ts) if last is None else max(last, float(ts))
        if kind == "cluster.hello":
            item["jobs"] = record.get("jobs")
        elif kind == "cluster.lease":
            item["leased"] += int(record.get("cells") or 0)
        elif kind == "cluster.result":
            item["completed"] += int(record.get("cells") or 0)
        elif kind == "cluster.steal":
            item["stolen"] += int(record.get("cells") or 0)
        elif kind == "cluster.heartbeat":
            item["heartbeats"] += 1
    return workers


def _event_counters(events: List[Dict[str, Any]]) -> Dict[str, int]:
    """Fleet-wide event-kind tallies the dashboard surfaces."""
    counts: Dict[str, int] = {}
    for record in events:
        kind = record.get("kind")
        if isinstance(kind, str):
            counts[kind] = counts.get(kind, 0) + 1
    return counts


def _service_state(root: Union[str, Path]) -> Optional[Dict[str, Any]]:
    """The dispatcher's status report for ``root``, or None when the root
    does not exist (the console must render without a service)."""
    root = Path(root)
    if not root.is_dir():
        return None
    from repro.service import Dispatcher

    return Dispatcher(root).status()


def gather_fleet_state(
    service_root: Optional[Union[str, Path]] = None,
    events_path: Optional[Union[str, Path]] = None,
    metrics_dir: Optional[Union[str, Path]] = None,
    now: Optional[float] = None,
) -> Dict[str, Any]:
    """One frame's worth of fleet state, as plain data.

    Every source is optional; missing ones contribute ``None`` / empties.
    ``now`` pins the clock for deterministic tests.
    """
    now = time.time() if now is None else now
    state: Dict[str, Any] = {
        "now": now,
        "service_root": str(service_root) if service_root else None,
        "events_path": str(events_path) if events_path else None,
        "metrics_dir": str(metrics_dir) if metrics_dir else None,
        "service": None,
        "campaigns": {},
        "counters": {},
        "cluster": {},
        "workers": [],
        "events_seen": 0,
    }
    if service_root:
        state["service"] = _service_state(service_root)
    if events_path:
        events = _tail_events(events_path)
        state["events_seen"] = len(events)
        state["campaigns"] = _campaign_stats(events)
        state["counters"] = _event_counters(events)
        cluster = _cluster_stats(events)
        for item in cluster.values():
            last = item.pop("last_ts")
            item["age_s"] = (now - last) if last is not None else None
        state["cluster"] = cluster
        stamps = [
            record["ts"] for record in events
            if isinstance(record.get("ts"), (int, float))
        ]
        state["last_event_age_s"] = (now - max(stamps)) if stamps else None
    if metrics_dir:
        for payload in read_metrics_snapshots(metrics_dir):
            ts = payload.get("ts")
            age = (now - float(ts)) if isinstance(ts, (int, float)) else None
            state["workers"].append(
                {
                    "pid": payload.get("pid"),
                    "age_s": age,
                    "stale": age is None or age > STALE_AFTER_S,
                    "metrics": payload.get("metrics", {}),
                }
            )
        merged = merge_registry_snapshots(
            [w["metrics"] for w in state["workers"]]
        )
        state["fleet_metrics"] = merged
    return state


def _bar(done: int, total: Optional[int], width: int = 20) -> str:
    if not isinstance(total, int) or total <= 0:
        return "-" * width
    filled = min(width, int(width * done / total))
    return "#" * filled + "-" * (width - filled)


def _fmt_rate(value: Optional[float]) -> str:
    return f"{value:.1f}/s" if value else "-"


def _fmt_eta(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if value >= 90:
        return f"{value / 60:.1f}m"
    return f"{value:.1f}s"


def render_top(state: Dict[str, Any]) -> str:
    """Render one gathered frame as terminal text (no escapes, testable)."""
    lines: List[str] = ["repro top — fleet console"]
    service = state.get("service")
    if state.get("service_root"):
        if service is None:
            lines.append(f"service: {state['service_root']} (no service root yet)")
        else:
            lines.append(
                "service: {root} — {p} pending, {a} active, {d} done".format(
                    root=service.get("root"),
                    p=len(service.get("pending", ())),
                    a=len(service.get("active", ())),
                    d=len(service.get("done", ())),
                )
            )
            for item in service.get("active", ()):
                detail = f"  running #{item['ticket']:08d} {item.get('target')}"
                progress = item.get("progress") or {}
                if progress.get("total"):
                    detail += (
                        f"  [{_bar(progress.get('done', 0), progress.get('total'))}] "
                        f"{progress.get('done', 0)}/{progress.get('total')}"
                    )
                    if progress.get("eta_s") is not None:
                        detail += f"  eta {_fmt_eta(progress['eta_s'])}"
                lines.append(detail)
            for item in service.get("pending", ()):
                lines.append(
                    f"  queued  #{item['ticket']:08d} {item.get('target')}"
                )

    campaigns = state.get("campaigns") or {}
    if campaigns:
        lines.append("campaigns (from event log):")
        for name in sorted(campaigns):
            item = campaigns[name]
            total = item.get("total")
            done = item.get("done", 0)
            row = (
                f"  {name:<20} [{_bar(done, total)}] "
                f"{done}/{total if total is not None else '?'}"
                f"  {_fmt_rate(item.get('cells_per_s'))}"
                f"  eta {_fmt_eta(item.get('eta_s'))}"
            )
            extras = []
            if item.get("cached"):
                extras.append(f"{item['cached']} cached")
            if item.get("retries"):
                extras.append(f"{item['retries']} retries")
            if item.get("timeouts"):
                extras.append(f"{item['timeouts']} timeouts")
            if item.get("failed"):
                extras.append(f"{item['failed']} FAILED")
            if item.get("finished"):
                extras.append("finished")
            if extras:
                row += "  (" + ", ".join(extras) + ")"
            lines.append(row)

    counters = state.get("counters") or {}
    hits = counters.get("store.hit", 0)
    misses = counters.get("store.miss", 0)
    if hits or misses:
        rate = 100.0 * hits / (hits + misses)
        line = f"store: {hits} hits / {misses} misses ({rate:.1f}% hit rate)"
        if counters.get("store.corrupt"):
            line += f", {counters['store.corrupt']} CORRUPT"
        lines.append(line)
    groups = counters.get("batch.group", 0)
    dissolved = counters.get("batch.dissolve", 0)
    if groups or dissolved:
        lines.append(f"batch: {groups} groups formed, {dissolved} dissolved")
    degraded = counters.get("pool.degraded", 0)
    rebuilt = counters.get("pool.rebuild", 0)
    if degraded or rebuilt:
        lines.append(f"pool: {rebuilt} rebuilds, {degraded} degradations")

    fleet = state.get("fleet_metrics") or {}
    faults = {k: v for k, v in fleet.items()
              if k.startswith("faults.") and isinstance(v, int) and v}
    if faults:
        lines.append(
            "faults: " + ", ".join(f"{k.split('.', 1)[1]}={v}"
                                   for k, v in sorted(faults.items()))
        )

    cluster = state.get("cluster") or {}
    if cluster:
        lines.append(f"cluster workers ({len(cluster)}):")
        for name in sorted(cluster):
            item = cluster[name]
            age = item.get("age_s")
            shown = f"{age:.1f}s" if isinstance(age, (int, float)) else "?"
            row = (
                f"  {name:<16} jobs={item.get('jobs') or '?'}"
                f"  leased={item.get('leased', 0)}"
                f"  completed={item.get('completed', 0)}"
                f"  last seen {shown} ago"
            )
            if item.get("stolen"):
                row += f"  ({item['stolen']} STOLEN)"
            lines.append(row)
        stolen = counters.get("cluster.steal", 0)
        proto = counters.get("cluster.protocol_error", 0)
        dupes = counters.get("cluster.duplicate_result", 0)
        extras = []
        if stolen:
            extras.append(f"{stolen} steal event(s)")
        if dupes:
            extras.append(f"{dupes} duplicate result(s) dropped")
        if proto:
            extras.append(f"{proto} protocol error(s)")
        if extras:
            lines.append("cluster: " + ", ".join(extras))

    workers = state.get("workers") or []
    if workers:
        lines.append(f"workers ({len(workers)} snapshot(s)):")
        for worker in workers:
            age = worker.get("age_s")
            health = "stale" if worker.get("stale") else "ok"
            shown = f"{age:.1f}s" if isinstance(age, (int, float)) else "?"
            metrics = worker.get("metrics", {})
            ints = sum(1 for v in metrics.values() if isinstance(v, int))
            lines.append(
                f"  pid {worker.get('pid')}  {health:<5} age {shown}"
                f"  ({len(metrics)} metrics, {ints} counters)"
            )

    if state.get("events_path"):
        age = state.get("last_event_age_s")
        shown = f"{age:.1f}s ago" if isinstance(age, (int, float)) else "never"
        lines.append(
            f"events: {state.get('events_seen', 0)} record(s) in "
            f"{state['events_path']} (last {shown})"
        )
    if len(lines) == 1:
        lines.append("(no sources: pass --service-root, --events-out, or --metrics-dir)")
    return "\n".join(lines)
