"""The fleet console: fold status files, event logs, and metrics snapshots
into one live text dashboard (``repro top``).

Three artifact families feed one frame:

- **Service status files** (``<root>/queue|active|done``, plus the
  drainer's atomic ``*.status.json``) give ticket-level state: what is
  queued, what a drainer is running right now, per-campaign done/total
  and ETA.
- **The event log** (``--events-out``) gives fleet dynamics: per-campaign
  completion counts, a cells/sec rate over a sliding window, store
  hit/miss traffic, retries/timeouts/failures, batch groups formed and
  dissolved.
- **Metrics snapshot files** (``--metrics-dir``) give per-worker health:
  one ``metrics-<pid>.json`` per process that ever ticked the exporter,
  with a freshness age derived from the snapshot's own timestamp.

Everything is read-only and tolerant: every source is optional, a frame
renders from whatever exists, and half-written files are skipped (the
writers are all atomic, so that only happens for foreign junk). The
gathering half (:func:`gather_fleet_state`) returns plain data and the
rendering half (:func:`render_top`) returns a string, so tests pin frames
without a terminal.
"""

from __future__ import annotations

import os
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.obs.events import read_events
from repro.obs.export import read_metrics_snapshots
from repro.obs.registry import merge_registry_snapshots

#: Sliding window (seconds of event time) for the cells/sec rate.
RATE_WINDOW_S = 30.0

#: A worker snapshot older than this (seconds) renders as stale.
STALE_AFTER_S = 15.0

#: Tail size read from the event log per frame; old history beyond this is
#: irrelevant to a live dashboard and skipping it keeps frames O(1).
_TAIL_BYTES = 1 << 20


def _tail_events(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """The last ~:data:`_TAIL_BYTES` of decodable events in ``path``.

    Small files go through :func:`read_events` verbatim; for big ones we
    seek to the tail and drop the first (possibly torn) line.
    """
    try:
        size = os.path.getsize(path)
    except OSError:
        return []
    if size <= _TAIL_BYTES:
        return read_events(path)
    import json

    records: List[Dict[str, Any]] = []
    with open(path, "rb") as handle:
        handle.seek(size - _TAIL_BYTES)
        chunk = handle.read()
    for line in chunk.split(b"\n")[1:]:
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            continue
        if isinstance(record, dict):
            records.append(record)
    return records


def _campaign_stats(events: List[Dict[str, Any]]) -> Dict[str, Dict[str, Any]]:
    """Per-campaign progress derived from the event tail."""
    campaigns: Dict[str, Dict[str, Any]] = {}

    def entry(name: Any) -> Dict[str, Any]:
        key = str(name) if name else "?"
        return campaigns.setdefault(
            key,
            {
                "total": None, "done": 0, "cached": 0, "failed": 0,
                "retries": 0, "timeouts": 0, "complete_ts": [],
            },
        )

    for record in events:
        kind = record.get("kind")
        if kind == "campaign.begin":
            item = entry(record.get("campaign"))
            item["total"] = record.get("total")
            # A fresh begin restarts the campaign's counters: the tail may
            # span several invocations of the same target.
            item.update(done=0, cached=0, failed=0, retries=0, timeouts=0)
            item["complete_ts"] = []
        elif kind == "cell.complete":
            item = entry(record.get("campaign"))
            item["done"] += 1
            ts = record.get("ts")
            if isinstance(ts, (int, float)):
                item["complete_ts"].append(float(ts))
        elif kind == "cell.cached":
            item = entry(record.get("campaign"))
            item["done"] += 1
            item["cached"] += 1
        elif kind == "cell.failed":
            entry(record.get("campaign"))["failed"] += 1
        elif kind == "cell.retry":
            entry(record.get("campaign"))["retries"] += 1
        elif kind == "cell.timeout":
            entry(record.get("campaign"))["timeouts"] += 1
        elif kind == "campaign.end":
            item = entry(record.get("campaign"))
            item["total"] = record.get("done", item["total"])
            item["finished"] = True

    for item in campaigns.values():
        stamps = item.pop("complete_ts")
        rate = None
        if len(stamps) >= 2:
            horizon = max(stamps) - RATE_WINDOW_S
            recent = [ts for ts in stamps if ts >= horizon]
            span = max(recent) - min(recent)
            if span > 0:
                rate = (len(recent) - 1) / span
        item["cells_per_s"] = rate
        total = item.get("total")
        if rate and isinstance(total, int) and total > item["done"]:
            item["eta_s"] = (total - item["done"]) / rate
        else:
            item["eta_s"] = None
    return campaigns


def _event_counters(events: List[Dict[str, Any]]) -> Dict[str, int]:
    """Fleet-wide event-kind tallies the dashboard surfaces."""
    counts: Dict[str, int] = {}
    for record in events:
        kind = record.get("kind")
        if isinstance(kind, str):
            counts[kind] = counts.get(kind, 0) + 1
    return counts


def _service_state(root: Union[str, Path]) -> Optional[Dict[str, Any]]:
    """The dispatcher's status report for ``root``, or None when the root
    does not exist (the console must render without a service)."""
    root = Path(root)
    if not root.is_dir():
        return None
    from repro.service import Dispatcher

    return Dispatcher(root).status()


def gather_fleet_state(
    service_root: Optional[Union[str, Path]] = None,
    events_path: Optional[Union[str, Path]] = None,
    metrics_dir: Optional[Union[str, Path]] = None,
    now: Optional[float] = None,
) -> Dict[str, Any]:
    """One frame's worth of fleet state, as plain data.

    Every source is optional; missing ones contribute ``None`` / empties.
    ``now`` pins the clock for deterministic tests.
    """
    now = time.time() if now is None else now
    state: Dict[str, Any] = {
        "now": now,
        "service_root": str(service_root) if service_root else None,
        "events_path": str(events_path) if events_path else None,
        "metrics_dir": str(metrics_dir) if metrics_dir else None,
        "service": None,
        "campaigns": {},
        "counters": {},
        "workers": [],
        "events_seen": 0,
    }
    if service_root:
        state["service"] = _service_state(service_root)
    if events_path:
        events = _tail_events(events_path)
        state["events_seen"] = len(events)
        state["campaigns"] = _campaign_stats(events)
        state["counters"] = _event_counters(events)
        stamps = [
            record["ts"] for record in events
            if isinstance(record.get("ts"), (int, float))
        ]
        state["last_event_age_s"] = (now - max(stamps)) if stamps else None
    if metrics_dir:
        for payload in read_metrics_snapshots(metrics_dir):
            ts = payload.get("ts")
            age = (now - float(ts)) if isinstance(ts, (int, float)) else None
            state["workers"].append(
                {
                    "pid": payload.get("pid"),
                    "age_s": age,
                    "stale": age is None or age > STALE_AFTER_S,
                    "metrics": payload.get("metrics", {}),
                }
            )
        merged = merge_registry_snapshots(
            [w["metrics"] for w in state["workers"]]
        )
        state["fleet_metrics"] = merged
    return state


def _bar(done: int, total: Optional[int], width: int = 20) -> str:
    if not isinstance(total, int) or total <= 0:
        return "-" * width
    filled = min(width, int(width * done / total))
    return "#" * filled + "-" * (width - filled)


def _fmt_rate(value: Optional[float]) -> str:
    return f"{value:.1f}/s" if value else "-"


def _fmt_eta(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if value >= 90:
        return f"{value / 60:.1f}m"
    return f"{value:.1f}s"


def render_top(state: Dict[str, Any]) -> str:
    """Render one gathered frame as terminal text (no escapes, testable)."""
    lines: List[str] = ["repro top — fleet console"]
    service = state.get("service")
    if state.get("service_root"):
        if service is None:
            lines.append(f"service: {state['service_root']} (no service root yet)")
        else:
            lines.append(
                "service: {root} — {p} pending, {a} active, {d} done".format(
                    root=service.get("root"),
                    p=len(service.get("pending", ())),
                    a=len(service.get("active", ())),
                    d=len(service.get("done", ())),
                )
            )
            for item in service.get("active", ()):
                detail = f"  running #{item['ticket']:08d} {item.get('target')}"
                progress = item.get("progress") or {}
                if progress.get("total"):
                    detail += (
                        f"  [{_bar(progress.get('done', 0), progress.get('total'))}] "
                        f"{progress.get('done', 0)}/{progress.get('total')}"
                    )
                    if progress.get("eta_s") is not None:
                        detail += f"  eta {_fmt_eta(progress['eta_s'])}"
                lines.append(detail)
            for item in service.get("pending", ()):
                lines.append(
                    f"  queued  #{item['ticket']:08d} {item.get('target')}"
                )

    campaigns = state.get("campaigns") or {}
    if campaigns:
        lines.append("campaigns (from event log):")
        for name in sorted(campaigns):
            item = campaigns[name]
            total = item.get("total")
            done = item.get("done", 0)
            row = (
                f"  {name:<20} [{_bar(done, total)}] "
                f"{done}/{total if total is not None else '?'}"
                f"  {_fmt_rate(item.get('cells_per_s'))}"
                f"  eta {_fmt_eta(item.get('eta_s'))}"
            )
            extras = []
            if item.get("cached"):
                extras.append(f"{item['cached']} cached")
            if item.get("retries"):
                extras.append(f"{item['retries']} retries")
            if item.get("timeouts"):
                extras.append(f"{item['timeouts']} timeouts")
            if item.get("failed"):
                extras.append(f"{item['failed']} FAILED")
            if item.get("finished"):
                extras.append("finished")
            if extras:
                row += "  (" + ", ".join(extras) + ")"
            lines.append(row)

    counters = state.get("counters") or {}
    hits = counters.get("store.hit", 0)
    misses = counters.get("store.miss", 0)
    if hits or misses:
        rate = 100.0 * hits / (hits + misses)
        line = f"store: {hits} hits / {misses} misses ({rate:.1f}% hit rate)"
        if counters.get("store.corrupt"):
            line += f", {counters['store.corrupt']} CORRUPT"
        lines.append(line)
    groups = counters.get("batch.group", 0)
    dissolved = counters.get("batch.dissolve", 0)
    if groups or dissolved:
        lines.append(f"batch: {groups} groups formed, {dissolved} dissolved")
    degraded = counters.get("pool.degraded", 0)
    rebuilt = counters.get("pool.rebuild", 0)
    if degraded or rebuilt:
        lines.append(f"pool: {rebuilt} rebuilds, {degraded} degradations")

    fleet = state.get("fleet_metrics") or {}
    faults = {k: v for k, v in fleet.items()
              if k.startswith("faults.") and isinstance(v, int) and v}
    if faults:
        lines.append(
            "faults: " + ", ".join(f"{k.split('.', 1)[1]}={v}"
                                   for k, v in sorted(faults.items()))
        )

    workers = state.get("workers") or []
    if workers:
        lines.append(f"workers ({len(workers)} snapshot(s)):")
        for worker in workers:
            age = worker.get("age_s")
            health = "stale" if worker.get("stale") else "ok"
            shown = f"{age:.1f}s" if isinstance(age, (int, float)) else "?"
            metrics = worker.get("metrics", {})
            ints = sum(1 for v in metrics.values() if isinstance(v, int))
            lines.append(
                f"  pid {worker.get('pid')}  {health:<5} age {shown}"
                f"  ({len(metrics)} metrics, {ints} counters)"
            )

    if state.get("events_path"):
        age = state.get("last_event_age_s")
        shown = f"{age:.1f}s ago" if isinstance(age, (int, float)) else "never"
        lines.append(
            f"events: {state.get('events_seen', 0)} record(s) in "
            f"{state['events_path']} (last {shown})"
        )
    if len(lines) == 1:
        lines.append("(no sources: pass --service-root, --events-out, or --metrics-dir)")
    return "\n".join(lines)
