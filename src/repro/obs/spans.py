"""Span tracing: bounded, sampled wall-time spans with simulated-time anchors.

A span records what one named operation cost — ``decide``, ``candidacy``,
``memo.probe``, ``engine.dispatch`` — as a wall-clock duration, optionally
anchored to the simulated instant it served (``sim_ts``, µs). The exporter
(:mod:`repro.obs.export`) lays spans out on the simulated timeline so they
line up under the schedule lanes in Perfetto.

Buffering is bounded and sampled: the first ``warmup`` spans of each *name*
are always kept (short runs see everything), after which only 1-in-
``sample_every`` is recorded; the buffer stops growing at ``capacity``
either way. Dropped/sampled-out spans still count toward the per-name
totals in :meth:`SpanBuffer.summary`, so aggregate cost accounting stays
exact even when individual spans are thinned.

Sampling decisions depend only on per-name arrival counts — never on an
RNG — so tracing cannot perturb a simulation's random streams; the
differential tests in ``tests/integration/test_obs_differential.py`` hold
runs bit-identical across obs off/on/sampled.
"""

from __future__ import annotations

import time as _wall
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.obs.gate import GATE


@dataclass(frozen=True)
class Span:
    """One recorded operation."""

    name: str
    wall_start_ns: int
    wall_dur_ns: int
    sim_ts: Optional[int] = None  # simulated µs anchor, None = wall-only
    cat: str = "scheduler"


class _NullSpanContext:
    """Shared no-op context manager handed out while the gate is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpanContext":
        return self

    def __exit__(self, *exc) -> None:
        return None


_NULL_SPAN = _NullSpanContext()


class _SpanContext:
    """Times one ``with`` block and hands the result to its buffer."""

    __slots__ = ("buffer", "name", "sim_ts", "cat", "_t0")

    def __init__(self, buffer: "SpanBuffer", name: str, sim_ts: Optional[int], cat: str):
        self.buffer = buffer
        self.name = name
        self.sim_ts = sim_ts
        self.cat = cat
        self._t0 = 0

    def __enter__(self) -> "_SpanContext":
        self._t0 = _wall.perf_counter_ns()
        return self

    def __exit__(self, *exc) -> None:
        self.buffer.record(
            self.name, self._t0, _wall.perf_counter_ns() - self._t0, self.sim_ts, self.cat
        )


@dataclass
class SpanNameStats:
    """Exact per-name aggregates (counted even for thinned spans)."""

    count: int = 0
    total_ns: int = 0
    recorded: int = 0

    @property
    def mean_ns(self) -> float:
        return self.total_ns / self.count if self.count else 0.0


class SpanBuffer:
    """Bounded in-memory span store with per-name warmup + 1-in-N sampling."""

    def __init__(
        self,
        capacity: Optional[int] = None,
        sample_every: Optional[int] = None,
        warmup: Optional[int] = None,
    ):
        self.capacity = capacity if capacity is not None else GATE.span_capacity
        self.sample_every = max(
            1, sample_every if sample_every is not None else GATE.sample_every
        )
        self.warmup = warmup if warmup is not None else GATE.warmup
        self.spans: List[Span] = []
        self.dropped = 0  # beyond capacity
        self.sampled_out = 0  # thinned by 1-in-N
        self._stats: Dict[str, SpanNameStats] = {}

    def span(
        self, name: str, sim_ts: Optional[int] = None, cat: str = "scheduler"
    ):
        """Context manager timing one block; a shared no-op when disabled."""
        if not GATE.enabled:
            return _NULL_SPAN
        return _SpanContext(self, name, sim_ts, cat)

    def record(
        self,
        name: str,
        wall_start_ns: int,
        wall_dur_ns: int,
        sim_ts: Optional[int] = None,
        cat: str = "scheduler",
    ) -> None:
        """Direct record (for call sites that already timed themselves)."""
        if not GATE.enabled:
            return
        stats = self._stats.get(name)
        if stats is None:
            stats = self._stats[name] = SpanNameStats()
        stats.count += 1
        stats.total_ns += wall_dur_ns
        if stats.count > self.warmup and (stats.count - self.warmup) % self.sample_every:
            self.sampled_out += 1
            return
        if len(self.spans) >= self.capacity:
            self.dropped += 1
            return
        stats.recorded += 1
        self.spans.append(Span(name, wall_start_ns, wall_dur_ns, sim_ts, cat))

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Per-name exact aggregates: count / total_ns / mean_ns / recorded."""
        return {
            name: {
                "count": stats.count,
                "total_ns": stats.total_ns,
                "mean_ns": stats.mean_ns,
                "recorded": stats.recorded,
            }
            for name, stats in sorted(self._stats.items())
        }

    def clear(self) -> None:
        self.spans.clear()
        self._stats.clear()
        self.dropped = 0
        self.sampled_out = 0

    def __len__(self) -> int:
        return len(self.spans)
