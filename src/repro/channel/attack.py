"""End-to-end covert-channel attacks and their accuracy evaluation.

Combines the dataset harvester, the Bayesian response-time decoder
(Sec. III-b/c) and the learning-based execution-vector decoder (Sec. III-d)
into the experiment shape the paper evaluates repeatedly: *channel accuracy
as a function of the number of profiling windows*, under a given global
scheduling policy (Figs. 4(c) and 12).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Union

import numpy as np

from repro.channel.bayes import BayesianDecoder
from repro.channel.dataset import (
    ChannelDataset,
    collect_dataset,
    collect_dataset_from_spec,
)
from repro.ml.metrics import accuracy
from repro.ml.svm import LSSVMClassifier
from repro.model.system import System
from repro.sim.behaviors import ChannelScript
from repro.sim.config import RunSpec, SystemSpec
from repro.sim.policies import GlobalPolicyBase

#: Method identifiers used in experiment outputs.
RESPONSE_TIME = "response-time"
EXECUTION_VECTOR = "execution-vector"


@dataclass(frozen=True)
class AttackResult:
    """Accuracy of one decoding method at one profiling-set size."""

    method: str
    profile_windows: int
    test_windows: int
    accuracy: float


def _default_classifier() -> LSSVMClassifier:
    return LSSVMClassifier(c=10.0)


def evaluate_attacks(
    dataset: ChannelDataset,
    profile_sizes: Sequence[int],
    classifier_factory: Callable[[], object] = _default_classifier,
) -> List[AttackResult]:
    """Score both attacks for each profiling-set size.

    For each size ``m`` (clamped to the available profiling windows, and
    forced even so the odd/even split is balanced):

    - the **response-time** attack profiles :math:`\\Pr(R|X)` on the first
      ``m`` profiling measurements and Bayes-decodes every message window;
    - the **execution-vector** attack trains ``classifier_factory()`` on the
      first ``m`` labeled vectors and classifies every message window.
    """
    message = dataset.message_part()
    if message.n_windows == 0:
        raise ValueError("dataset has no message windows to test on")
    profiling = dataset.profiling_part()
    results: List[AttackResult] = []
    for requested in profile_sizes:
        m = min(requested, profiling.n_windows)
        m -= m % 2  # balanced alternation
        if m < 2:
            continue
        decoder = BayesianDecoder().fit(profiling.response_times[:m])
        predicted = decoder.predict(message.response_times)
        results.append(
            AttackResult(
                RESPONSE_TIME, m, message.n_windows, accuracy(message.labels, predicted)
            )
        )
        train_x = profiling.vectors[:m].astype(np.float64)
        train_y = profiling.labels[:m]
        if len(set(train_y.tolist())) == 2:
            classifier = classifier_factory()
            classifier.fit(train_x, train_y)
            predicted = classifier.predict(message.vectors.astype(np.float64))
            results.append(
                AttackResult(
                    EXECUTION_VECTOR,
                    m,
                    message.n_windows,
                    accuracy(message.labels, predicted),
                )
            )
    if not results:
        raise ValueError("no usable profiling sizes were provided")
    return results


@dataclass
class ChannelExperiment:
    """A reusable channel-experiment configuration.

    Bundles everything needed to re-run the feasibility test under different
    policies: the system, channel roles, window geometry, and seeds.

    Attributes:
        system: Partitioned system whose sender/receiver tasks carry the
            ``sender``/``receiver`` behaviours.
        receiver_partition / receiver_task: Observation point.
        window: Monitoring window (µs).
        profile_windows: Leading alternating-bit windows.
        message_windows: Random uniform message bits to test on.
        message_seed: Seed for the message bits.
        sender_phases: Agreed sender launch offsets within each window (see
            :func:`repro.sim.behaviors.default_sender_phases`); None keeps
            the sender replenishment-periodic.
        budget_donation: Run the simulator with the idle-budget donation rule
            (the donation-channel ablation).
        system_spec: Optional compact :class:`~repro.sim.config.SystemSpec`
            describing ``system`` (a registered builder name + args). When
            set, :meth:`runspec` embeds it instead of serializing the built
            system inline, keeping campaign cell params small.
    """

    system: System
    receiver_partition: str
    receiver_task: str
    window: int
    profile_windows: int
    message_windows: int
    message_seed: int = 7
    sender_phases: Optional[Sequence[int]] = None
    budget_donation: bool = False
    system_spec: Optional[SystemSpec] = None

    @property
    def n_windows(self) -> int:
        """Observations the experiment harvests (profiling + message)."""
        return self.profile_windows + self.message_windows

    def script(self) -> ChannelScript:
        return ChannelScript(
            window=self.window,
            profile_windows=self.profile_windows,
            message_bits=ChannelScript.random_message(
                self.message_windows, self.message_seed
            ),
            sender_phases=self.sender_phases,
        )

    def runspec(
        self,
        policy: str,
        seed: int = 0,
        quantum: Optional[int] = None,
        faults=None,
        settle_windows: int = 2,
        scheduler: str = "fp",
    ) -> RunSpec:
        """The experiment under ``policy`` as one declarative ``RunSpec``.

        The spec is self-contained — system, channel script, horizon (with
        ``settle_windows`` of slack, exactly what :meth:`run` simulates) —
        so ``spec.content_hash()`` is a sound cache key for everything the
        run's dataset can depend on. ``scheduler`` selects the registered
        partition-local scheduler (``"fp"`` keeps the spec — and thus its
        content hash — identical to pre-scheduler-field specs). Harvest-side
        parameters (receiver names, ``m_micro``) are *observations* and live
        in :meth:`harvest_params` instead.
        """
        script = self.script()
        system = (
            self.system_spec
            if self.system_spec is not None
            else SystemSpec.from_system(self.system)
        )
        horizon = script.start + (self.n_windows + settle_windows) * script.window
        return RunSpec(
            system=system,
            policy=policy,
            seed=seed,
            horizon=horizon,
            quantum=quantum,
            channel=script,
            faults=faults,
            budget_donation=self.budget_donation,
            scheduler=scheduler,
        )

    def harvest_params(self, m_micro: int = 150) -> Dict[str, object]:
        """The observation-side params a campaign cell ships beside the spec."""
        return {
            "receiver_partition": self.receiver_partition,
            "receiver_task": self.receiver_task,
            "n_windows": self.n_windows,
            "m_micro": m_micro,
        }

    def run(
        self,
        policy: Union[str, GlobalPolicyBase],
        seed: int = 0,
        m_micro: int = 150,
        quantum: Optional[int] = None,
        local_scheduler_factory=None,
        faults=None,
        extra_observers=(),
        scheduler: str = "fp",
    ) -> ChannelDataset:
        """Simulate under ``policy`` and harvest the labeled dataset."""
        return collect_dataset(
            self.system,
            policy,
            self.script(),
            n_windows=self.profile_windows + self.message_windows,
            receiver_partition=self.receiver_partition,
            receiver_task=self.receiver_task,
            seed=seed,
            m_micro=m_micro,
            quantum=quantum,
            budget_donation=self.budget_donation,
            local_scheduler_factory=local_scheduler_factory,
            faults=faults,
            extra_observers=extra_observers,
            scheduler=scheduler,
        )


def dataset_from_params(
    params: Mapping[str, object],
    extra_observers=(),
    local_scheduler_factory=None,
) -> ChannelDataset:
    """Rebuild and harvest a channel run from campaign-cell params.

    The worker-side counterpart of :meth:`ChannelExperiment.runspec` +
    :meth:`ChannelExperiment.harvest_params`: ``params`` must carry the
    serialized spec under ``"runspec"`` plus the harvest keys. Live
    attachments (observers, local-scheduler factories) cannot cross a
    process boundary, so cells resolve those themselves and pass them here.
    """
    spec = RunSpec.from_dict(params["runspec"])
    return collect_dataset_from_spec(
        spec,
        receiver_partition=params["receiver_partition"],
        receiver_task=params["receiver_task"],
        n_windows=params["n_windows"],
        m_micro=params.get("m_micro", 150),
        extra_observers=extra_observers,
        local_scheduler_factory=local_scheduler_factory,
    )
