"""The multi-bit (multi-level) channel extension (Sec. III-a).

"They may even form a multi-bit channel by dividing the response time range
into multiple levels." Here the sender modulates its budget consumption over
:math:`K` levels — level :math:`s` burns a fraction :math:`s/(K-1)` of the
budget per burst — and the receiver decodes the symbol from its response
time with a per-symbol Bayesian model. The profiling phase cycles through
the symbols 0,1,…,K−1,0,1,… so the receiver can label its measurements by
position, exactly like the binary odd/even agreement.

Capacity-wise a clean K-level channel carries :math:`\\log_2 K` bits per
monitoring window; TimeDice collapses the levels into one overlapping blur
(the multilevel experiment in ``benchmarks/test_bench_multilevel.py``
measures both).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.channel.capacity import mutual_information
from repro.channel.profiling import DEFAULT_BIN_WIDTH
from repro.model.task import Task
from repro.sim.behaviors import Behavior, SENDER_LOW_EXEC


@dataclass
class SymbolScript:
    """A K-ary modulation schedule (the multi-level ChannelScript).

    Attributes:
        window: Monitoring window (µs); one symbol per window.
        levels: Number of symbols K (>= 2).
        profile_cycles: Leading profiling cycles; each cycle transmits the
            symbols 0..K-1 in order, so ``profile_cycles * levels`` windows
            carry known labels.
        message_symbols: Symbols transmitted afterwards (cycled).
        sender_phases: Agreed launch offsets within each window (same
            semantics as :class:`~repro.sim.behaviors.ChannelScript`).
        start: Absolute start of window 0.
    """

    window: int
    levels: int
    profile_cycles: int = 0
    message_symbols: Sequence[int] = field(default_factory=lambda: (0, 1))
    sender_phases: Optional[Sequence[int]] = None
    start: int = 0

    def __post_init__(self) -> None:
        if self.window <= 0:
            raise ValueError("window must be positive")
        if self.levels < 2:
            raise ValueError("a symbol channel needs at least 2 levels")
        if any(not 0 <= s < self.levels for s in self.message_symbols):
            raise ValueError("message symbols must be in [0, levels)")
        if not self.message_symbols:
            raise ValueError("message symbols must be non-empty")
        if self.sender_phases is not None:
            self.sender_phases = tuple(sorted(self.sender_phases))

    @property
    def profile_windows(self) -> int:
        return self.profile_cycles * self.levels

    def window_index(self, t: int) -> int:
        return (t - self.start) // self.window

    def symbol_of_window(self, index: int) -> int:
        if index < 0:
            raise ValueError("window index must be non-negative")
        if index < self.profile_windows:
            return index % self.levels
        return self.message_symbols[
            (index - self.profile_windows) % len(self.message_symbols)
        ]

    def symbol_at(self, t: int) -> int:
        index = self.window_index(t)
        return 0 if index < 0 else self.symbol_of_window(index)

    @staticmethod
    def random_message(n_symbols: int, levels: int, seed: int) -> List[int]:
        rng = random.Random(seed)
        return [rng.randrange(levels) for _ in range(n_symbols)]


class MultiLevelSenderBehavior(Behavior):
    """Burns ``symbol/(K-1)`` of the budget per burst (level modulation)."""

    def __init__(self, script: SymbolScript, low_exec: int = SENDER_LOW_EXEC):
        self.script = script
        self.low_exec = low_exec

    def execution_time(self, task: Task, arrival: int, rng: random.Random) -> int:
        symbol = self.script.symbol_at(arrival)
        fraction = symbol / (self.script.levels - 1)
        return max(min(self.low_exec, task.wcet), round(task.wcet * fraction))

    def inter_arrival(self, task: Task, arrival: int, rng: random.Random) -> int:
        phases = self.script.sender_phases
        if phases is None:
            return task.period
        window = self.script.window
        phase = (arrival - self.script.start) % window
        for candidate in phases:
            if candidate > phase:
                return candidate - phase
        return window - phase + phases[0]


class MultiLevelBayesianDecoder:
    """Per-symbol histogram models + MAP decoding (the K-ary Sec. III-c)."""

    def __init__(self, levels: int, bin_width: int = DEFAULT_BIN_WIDTH, laplace: float = 0.5):
        if levels < 2:
            raise ValueError("levels must be >= 2")
        self.levels = levels
        self.bin_width = bin_width
        self.laplace = laplace
        self._edges: Optional[np.ndarray] = None
        self._likelihoods: Optional[np.ndarray] = None  # (levels, bins)

    def fit(self, measurements: np.ndarray, labels: np.ndarray) -> "MultiLevelBayesianDecoder":
        measurements = np.asarray(measurements, dtype=np.float64).ravel()
        labels = np.asarray(labels).ravel().astype(np.int64)
        if measurements.shape != labels.shape:
            raise ValueError("measurements and labels must align")
        if set(np.unique(labels)) != set(range(self.levels)):
            raise ValueError(
                f"profiling must cover all {self.levels} symbols, got "
                f"{sorted(set(labels.tolist()))}"
            )
        lo = int(np.floor(measurements.min() / self.bin_width)) * self.bin_width
        hi = int(np.ceil(measurements.max() / self.bin_width)) * self.bin_width
        if hi <= lo:
            hi = lo + self.bin_width
        edges = np.arange(lo, hi + self.bin_width, self.bin_width, dtype=np.float64)
        models = []
        for symbol in range(self.levels):
            counts, _ = np.histogram(measurements[labels == symbol], bins=edges)
            smoothed = counts.astype(np.float64) + self.laplace
            models.append(smoothed / smoothed.sum())
        self._edges = edges
        self._likelihoods = np.stack(models)
        return self

    def _bin_of(self, r: float) -> int:
        index = int(np.searchsorted(self._edges, r, side="right")) - 1
        return max(0, min(index, self._likelihoods.shape[1] - 1))

    def predict(self, measurements: np.ndarray) -> np.ndarray:
        if self._likelihoods is None:
            raise RuntimeError("decoder is not fitted")
        measurements = np.asarray(measurements, dtype=np.float64).ravel()
        bins = np.array([self._bin_of(r) for r in measurements])
        return np.argmax(self._likelihoods[:, bins], axis=0).astype(np.int64)

    def conditional_matrix(self) -> np.ndarray:
        """Pr(bin | symbol) — feedable to Blahut-Arimoto for capacity."""
        if self._likelihoods is None:
            raise RuntimeError("decoder is not fitted")
        return self._likelihoods.copy()


def collect_multilevel(
    system,
    policy,
    script: SymbolScript,
    n_windows: int,
    receiver_task: str,
    seed: int = 0,
    settle_windows: int = 2,
) -> Tuple[np.ndarray, np.ndarray]:
    """Run the simulator with a K-ary sender and harvest (labels, responses).

    The sender/receiver behaviours are injected explicitly (the binary
    :class:`~repro.sim.behaviors.ChannelScript` machinery is bypassed).
    Returns aligned arrays over the maximal complete window prefix.
    """
    from repro.sim.behaviors import ReceiverBehavior
    from repro.sim.engine import Simulator
    from repro.sim.trace import ResponseTimeRecorder

    recorder = ResponseTimeRecorder([receiver_task])
    simulator = Simulator(
        system,
        policy=policy,
        seed=seed,
        behaviors={
            "sender": MultiLevelSenderBehavior(script),
            "receiver": ReceiverBehavior(),
        },
        observers=[recorder],
    )
    simulator.run_until(script.start + (n_windows + settle_windows) * script.window)
    per_window: Dict[int, int] = {}
    for record in recorder.records.get(receiver_task, []):
        index = script.window_index(record.arrival)
        if 0 <= index < n_windows and index not in per_window:
            per_window[index] = record.response_time
    usable = 0
    while usable < n_windows and usable in per_window:
        usable += 1
    if usable == 0:
        raise RuntimeError("no receiver measurements completed")
    labels = np.array([script.symbol_of_window(i) for i in range(usable)], dtype=np.int64)
    responses = np.array([per_window[i] for i in range(usable)], dtype=np.int64)
    return labels, responses


@dataclass
class MultiLevelResult:
    """Outcome of one K-ary channel run."""

    levels: int
    symbol_accuracy: float
    bits_per_window: float
    max_bits: float


def evaluate_multilevel(
    labels: np.ndarray,
    response_times: np.ndarray,
    profile_windows: int,
    levels: int,
    bin_width: int = DEFAULT_BIN_WIDTH,
) -> MultiLevelResult:
    """Decode a K-ary dataset and measure accuracy + information throughput."""
    labels = np.asarray(labels).ravel().astype(np.int64)
    responses = np.asarray(response_times, dtype=np.float64).ravel()
    train_x, train_y = responses[:profile_windows], labels[:profile_windows]
    test_x, test_y = responses[profile_windows:], labels[profile_windows:]
    if test_x.size == 0:
        raise ValueError("no message windows to evaluate")
    decoder = MultiLevelBayesianDecoder(levels, bin_width=bin_width).fit(train_x, train_y)
    predicted = decoder.predict(test_x)
    accuracy = float(np.mean(predicted == test_y))
    # Empirical mutual information between sent symbol and received bin.
    bins = np.array([decoder._bin_of(r) for r in test_x])
    joint = np.zeros((levels, int(bins.max()) + 1))
    for symbol, bin_index in zip(test_y, bins):
        joint[symbol, bin_index] += 1
    bits = mutual_information(joint) if joint.sum() else 0.0
    return MultiLevelResult(
        levels=levels,
        symbol_accuracy=accuracy,
        bits_per_window=float(bits),
        max_bits=float(np.log2(levels)),
    )
