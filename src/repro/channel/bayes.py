"""Bayesian decoding of the sender's signal (Sec. III-c).

With equal priors :math:`\\Pr(X=0) = \\Pr(X=1)` (the receiver has no reason
to believe one bit is more likely), MAP decoding reduces to a likelihood
comparison: predict :math:`X = 0` iff
:math:`\\Pr(R=r \\mid X=0) > \\Pr(R=r \\mid X=1)`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.channel.profiling import (
    DEFAULT_BIN_WIDTH,
    ResponseTimeProfile,
    profile_odd_even,
)


class BayesianDecoder:
    """MAP decoder over a profiled pair of response-time distributions.

    ``fit`` runs the profiling procedure on alternating-bit measurements;
    ``predict`` decodes new measurements. The scikit-learn-ish protocol lets
    experiments treat it interchangeably with the :mod:`repro.ml`
    classifiers (with response times as 1-D features).
    """

    def __init__(self, bin_width: int = DEFAULT_BIN_WIDTH, laplace: float = 0.5):
        self.bin_width = bin_width
        self.laplace = laplace
        self.profile: Optional[ResponseTimeProfile] = None

    def fit(self, measurements: np.ndarray, labels: Optional[np.ndarray] = None) -> "BayesianDecoder":
        """Profile from alternating-bit measurements (labels are ignored:
        the odd/even agreement is the whole point of the profiling phase)."""
        measurements = np.asarray(measurements, dtype=np.float64).ravel()
        self.profile = profile_odd_even(measurements, self.bin_width, self.laplace)
        return self

    def posterior_one(self, response_time: float) -> float:
        """:math:`\\Pr(X=1 \\mid R=r)` under equal priors."""
        if self.profile is None:
            raise RuntimeError("decoder is not fitted")
        like0, like1 = self.profile.likelihoods(response_time)
        total = like0 + like1
        if total <= 0.0:  # pragma: no cover - smoothing prevents this
            return 0.5
        return like1 / total

    def predict(self, measurements: np.ndarray) -> np.ndarray:
        """Decoded bits for a batch of measurements."""
        measurements = np.asarray(measurements, dtype=np.float64).ravel()
        return np.array(
            [1 if self.posterior_one(r) >= 0.5 else 0 for r in measurements],
            dtype=np.int64,
        )
