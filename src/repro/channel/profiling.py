"""The profiling phase (Sec. III-b).

During profiling the sender transmits 0 and 1 alternately; the receiver
splits its ``m`` measurements into odd- and even-indexed groups
:math:`\\mathcal{R}_{odd} = \\{r_1, r_3, \\dots\\}` and
:math:`\\mathcal{R}_{even} = \\{r_2, r_4, \\dots\\}` and assigns the group
with the **smaller mean** to :math:`\\Pr(R|X=0)` (a quiet sender means a
short response time). Each conditional distribution is estimated as a binned
histogram with Laplace smoothing so that unseen response times never produce
zero-probability deadlocks during decoding.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro._time import MS

#: Default histogram bin width: 1 ms, the natural resolution given the 1 ms
#: randomization quantum.
DEFAULT_BIN_WIDTH = 1 * MS


@dataclass
class ResponseTimeProfile:
    """Binned empirical model of :math:`\\Pr(R \\mid X)` for both X values.

    Attributes:
        bin_edges: Shared histogram edges (µs), covering both conditionals.
        p_r_given_0 / p_r_given_1: Smoothed per-bin probabilities (sum to 1).
        mean_0 / mean_1: Group means (µs), for introspection.
    """

    bin_edges: np.ndarray
    p_r_given_0: np.ndarray
    p_r_given_1: np.ndarray
    mean_0: float
    mean_1: float

    @property
    def n_bins(self) -> int:
        return int(self.p_r_given_0.shape[0])

    def bin_of(self, response_time: float) -> int:
        """Histogram bin index of a response time (clamped to the support)."""
        index = int(np.searchsorted(self.bin_edges, response_time, side="right")) - 1
        return max(0, min(index, self.n_bins - 1))

    def likelihoods(self, response_time: float) -> Tuple[float, float]:
        """:math:`(\\Pr(R=r|X=0), \\Pr(R=r|X=1))` for one measurement."""
        index = self.bin_of(response_time)
        return float(self.p_r_given_0[index]), float(self.p_r_given_1[index])


def _histogram(
    samples: np.ndarray, edges: np.ndarray, laplace: float
) -> np.ndarray:
    counts, _ = np.histogram(samples, bins=edges)
    smoothed = counts.astype(np.float64) + laplace
    return smoothed / smoothed.sum()


def profile_from_groups(
    group_low: np.ndarray,
    group_high: np.ndarray,
    bin_width: int = DEFAULT_BIN_WIDTH,
    laplace: float = 0.5,
) -> ResponseTimeProfile:
    """Build a profile from already-separated X=0 / X=1 measurement groups."""
    group_low = np.asarray(group_low, dtype=np.float64)
    group_high = np.asarray(group_high, dtype=np.float64)
    if group_low.size == 0 or group_high.size == 0:
        raise ValueError("both profiling groups need at least one measurement")
    if bin_width <= 0:
        raise ValueError("bin width must be positive")
    lo = min(group_low.min(), group_high.min())
    hi = max(group_low.max(), group_high.max())
    first = int(np.floor(lo / bin_width)) * bin_width
    last = int(np.ceil(hi / bin_width)) * bin_width
    if last <= first:
        last = first + bin_width
    edges = np.arange(first, last + bin_width, bin_width, dtype=np.float64)
    return ResponseTimeProfile(
        bin_edges=edges,
        p_r_given_0=_histogram(group_low, edges, laplace),
        p_r_given_1=_histogram(group_high, edges, laplace),
        mean_0=float(group_low.mean()),
        mean_1=float(group_high.mean()),
    )


def profile_odd_even(
    measurements: np.ndarray,
    bin_width: int = DEFAULT_BIN_WIDTH,
    laplace: float = 0.5,
) -> ResponseTimeProfile:
    """The paper's profiling procedure over alternating-bit measurements.

    Splits the sequence into odd/even groups and maps the smaller-mean group
    to X=0. Needs at least one measurement in each group (>= 2 samples).
    """
    measurements = np.asarray(measurements, dtype=np.float64)
    if measurements.size < 2:
        raise ValueError("profiling needs at least two measurements")
    evens = measurements[0::2]  # windows 0, 2, ... carry bit 0 by agreement
    odds = measurements[1::2]
    if evens.mean() <= odds.mean():
        group_low, group_high = evens, odds
    else:
        group_low, group_high = odds, evens
    return profile_from_groups(group_low, group_high, bin_width, laplace)
