"""Information-theoretic channel measurements (Sec. V-B1, Eq. 6, Fig. 15).

The paper measures the channel capacity as :math:`C = H(X) - H(X|R)` with a
uniform binary input, where the channel noise

.. math::

    H(X|R) = \\sum_R \\sum_X \\Pr(X, R) \\log \\frac{\\Pr(R)}{\\Pr(X, R)}

is estimated from samples by binning the response times. That quantity is
the mutual information :math:`I(X; R)` at the uniform input;
:func:`blahut_arimoto` additionally computes the true capacity
:math:`\\max_{p(X)} I(X; R)` of the *estimated* conditional distributions,
which is what the definition in the paper maximizes over.

All entropies are in bits.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro._time import MS

DEFAULT_BIN_WIDTH = 1 * MS


def entropy(p: np.ndarray) -> float:
    """Shannon entropy (bits) of a probability vector (zeros contribute 0)."""
    p = np.asarray(p, dtype=np.float64).ravel()
    if p.size == 0:
        raise ValueError("empty distribution")
    if np.any(p < -1e-12):
        raise ValueError("negative probabilities")
    total = p.sum()
    if not np.isclose(total, 1.0, atol=1e-6):
        raise ValueError(f"probabilities must sum to 1, got {total}")
    positive = p[p > 0]
    return float(-(positive * np.log2(positive)).sum())


def conditional_entropy(joint: np.ndarray) -> float:
    """:math:`H(X|R)` (Eq. 6) from a joint distribution of shape (|X|, |R|)."""
    joint = np.asarray(joint, dtype=np.float64)
    if joint.ndim != 2:
        raise ValueError("joint distribution must be 2-D (X rows, R columns)")
    total = joint.sum()
    if total <= 0:
        raise ValueError("joint distribution is empty")
    joint = joint / total
    p_r = joint.sum(axis=0)
    result = 0.0
    for x in range(joint.shape[0]):
        for r in range(joint.shape[1]):
            if joint[x, r] > 0:
                result += joint[x, r] * np.log2(p_r[r] / joint[x, r])
    return float(result)


def mutual_information(joint: np.ndarray) -> float:
    """:math:`I(X; R) = H(X) - H(X|R)` from a joint distribution."""
    joint = np.asarray(joint, dtype=np.float64)
    joint = joint / joint.sum()
    p_x = joint.sum(axis=1)
    return entropy(p_x) - conditional_entropy(joint)


def joint_from_samples(
    labels: np.ndarray,
    response_times: np.ndarray,
    bin_width: int = DEFAULT_BIN_WIDTH,
) -> np.ndarray:
    """Empirical joint counts ``J[x, bin]`` from labeled measurements."""
    labels = np.asarray(labels).ravel().astype(np.int64)
    responses = np.asarray(response_times, dtype=np.float64).ravel()
    if labels.shape != responses.shape:
        raise ValueError("labels and response times must align")
    if labels.size == 0:
        raise ValueError("no samples")
    if bin_width <= 0:
        raise ValueError("bin width must be positive")
    bins = (responses // bin_width).astype(np.int64)
    offset = bins.min()
    bins -= offset
    joint = np.zeros((2, int(bins.max()) + 1), dtype=np.float64)
    for label, bin_index in zip(labels, bins):
        if label not in (0, 1):
            raise ValueError("labels must be 0 or 1")
        joint[label, bin_index] += 1.0
    return joint


def channel_capacity_from_samples(
    labels: np.ndarray,
    response_times: np.ndarray,
    bin_width: int = DEFAULT_BIN_WIDTH,
) -> float:
    """The Fig. 15 measurement: :math:`I(X; R)` in bits per monitoring window.

    Assumes the message bits were drawn uniformly (which the experiment
    harness guarantees), so :math:`H(X) \\approx 1` and the value is directly
    comparable to the paper's 0-to-1 scale.
    """
    joint = joint_from_samples(labels, response_times, bin_width)
    return mutual_information(joint)


def blahut_arimoto(
    conditional: np.ndarray,
    tolerance: float = 1e-9,
    max_iterations: int = 10_000,
) -> Tuple[float, np.ndarray]:
    """True capacity :math:`\\max_{p(X)} I(X;R)` of a discrete channel.

    Args:
        conditional: Row-stochastic matrix ``P[x, r]`` = Pr(R=r | X=x).

    Returns:
        (capacity in bits, the optimizing input distribution).
    """
    p_r_given_x = np.asarray(conditional, dtype=np.float64)
    if p_r_given_x.ndim != 2:
        raise ValueError("conditional must be 2-D")
    if np.any(p_r_given_x < 0):
        raise ValueError("negative conditional probabilities")
    row_sums = p_r_given_x.sum(axis=1)
    if np.any(row_sums <= 0):
        raise ValueError("every input symbol needs a valid output distribution")
    p_r_given_x = p_r_given_x / row_sums[:, None]

    n_inputs = p_r_given_x.shape[0]
    p_x = np.full(n_inputs, 1.0 / n_inputs)
    with np.errstate(divide="ignore", invalid="ignore"):
        log_cond = np.where(p_r_given_x > 0, np.log2(p_r_given_x), 0.0)
    capacity = 0.0
    for _ in range(max_iterations):
        p_r = p_x @ p_r_given_x
        with np.errstate(divide="ignore", invalid="ignore"):
            log_ratio = np.where(
                p_r_given_x > 0, log_cond - np.log2(np.maximum(p_r, 1e-300)), 0.0
            )
        divergence = (p_r_given_x * log_ratio).sum(axis=1)
        new_capacity = float(np.log2(np.sum(p_x * np.exp2(divergence))))
        p_x = p_x * np.exp2(divergence)
        p_x = p_x / p_x.sum()
        if abs(new_capacity - capacity) < tolerance:
            return new_capacity, p_x
        capacity = new_capacity
    return capacity, p_x
