"""Harvesting labeled channel observations from a simulation run.

One observation per monitoring window:

- the **response time** of the receiver's measurement job released at the
  window start (Sec. III-a: "a single task of the receiver partition measures
  times it takes to execute a block of code"), and
- the **execution vector** — which of the window's M micro intervals the
  receiver partition occupied (Sec. III-d).

Ground-truth labels come from the :class:`~repro.sim.behaviors.ChannelScript`
(the receiver of course never reads them; they are used for training labels
during the profiling phase — where the alternation is agreed upon — and for
scoring accuracy afterwards).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple, Union

import numpy as np

from repro.model.system import System
from repro.sim.behaviors import ChannelScript
from repro.sim.config import RunSpec
from repro.sim.engine import Simulator
from repro.sim.policies import GlobalPolicyBase
from repro.sim.trace import ExecutionVectorRecorder, ResponseTimeRecorder


@dataclass
class ChannelDataset:
    """Aligned per-window arrays harvested from one run.

    Attributes:
        labels: Ground-truth bits, one per window.
        response_times: Receiver response times (µs), one per window.
        vectors: Execution vectors, shape ``(n_windows, m)``.
        profile_windows: How many leading windows carry the profiling
            alternation (their labels are 0,1,0,1,...).
        window: Monitoring-window length (µs).
    """

    labels: np.ndarray
    response_times: np.ndarray
    vectors: np.ndarray
    profile_windows: int
    window: int

    def __post_init__(self) -> None:
        n = self.labels.shape[0]
        if self.response_times.shape[0] != n or self.vectors.shape[0] != n:
            raise ValueError("labels, response times, and vectors must align")
        if not 0 <= self.profile_windows <= n:
            raise ValueError("profile_windows outside dataset")

    @property
    def n_windows(self) -> int:
        return int(self.labels.shape[0])

    def profiling_part(self) -> "ChannelDataset":
        """The leading profiling-phase windows."""
        return self.head(self.profile_windows)

    def message_part(self) -> "ChannelDataset":
        """The communication-phase windows (everything after profiling)."""
        p = self.profile_windows
        return ChannelDataset(
            self.labels[p:], self.response_times[p:], self.vectors[p:], 0, self.window
        )

    def head(self, n: int) -> "ChannelDataset":
        """The first ``n`` windows (clamped), preserving phase bookkeeping."""
        n = max(0, min(n, self.n_windows))
        return ChannelDataset(
            self.labels[:n],
            self.response_times[:n],
            self.vectors[:n],
            min(self.profile_windows, n),
            self.window,
        )


def collect_dataset(
    system: System,
    policy: Union[str, GlobalPolicyBase],
    script: ChannelScript,
    n_windows: int,
    receiver_partition: str,
    receiver_task: str,
    seed: int = 0,
    m_micro: int = 150,
    quantum: Optional[int] = None,
    settle_windows: int = 2,
    budget_donation: bool = False,
    extra_observers: Tuple = (),
    local_scheduler_factory=None,
    faults=None,
    scheduler: str = "fp",
) -> ChannelDataset:
    """Run the simulation long enough to observe ``n_windows`` full windows.

    Args:
        system: The partitioned system (its sender/receiver tasks must use
            the ``sender``/``receiver`` behaviours).
        policy: Global policy name or instance.
        script: The channel modulation schedule.
        n_windows: Observations to harvest (profiling + message).
        receiver_partition / receiver_task: Where to observe.
        seed: Simulation seed.
        m_micro: Micro intervals per execution vector (the paper uses 150).
        quantum: TimeDice MIN_INV_SIZE override (µs).
        settle_windows: Extra trailing windows simulated so the last
            observation's job can finish even under worst-case delay.
        budget_donation: Enable the Sec. II-a idle-budget donation rule in
            the simulator (the donation-channel ablation).
        extra_observers: Additional trace observers (e.g. the car platform's
            application nodes).
        local_scheduler_factory: Forwarded to the simulator (an escape
            hatch for unregistered experiments; BLINDER historically
            plugged in here before it became ``scheduler="blinder"``).
        faults: Optional :class:`repro.faults.FaultPlan` forwarded to the
            simulator (the robustness sweep measures channel accuracy under
            injected faults).
        scheduler: Registered local-scheduler name (``"fp"``, ``"edf"``,
            ``"reorder"``, ``"blinder"``, ...) forwarded to the simulator.
            Mutually exclusive with ``local_scheduler_factory``.

    Returns:
        A :class:`ChannelDataset`; windows whose measurement job never
        completed in time are dropped from the tail.
    """
    response_recorder = ResponseTimeRecorder([receiver_task])
    vector_recorder = ExecutionVectorRecorder(
        receiver_partition, script.window, m=m_micro, start=script.start
    )
    kwargs = {}
    if quantum is not None:
        kwargs["quantum"] = quantum
    simulator = Simulator(
        system,
        policy=policy,
        seed=seed,
        channel=script,
        observers=[response_recorder, vector_recorder, *extra_observers],
        budget_donation=budget_donation,
        local_scheduler_factory=local_scheduler_factory,
        faults=faults,
        scheduler=scheduler,
        **kwargs,
    )
    horizon = script.start + (n_windows + settle_windows) * script.window
    simulator.run_until(horizon)
    return _harvest(
        script, n_windows, receiver_task, response_recorder, vector_recorder
    )


def collect_dataset_from_spec(
    spec: RunSpec,
    *,
    receiver_partition: str,
    receiver_task: str,
    n_windows: int,
    m_micro: int = 150,
    settle_windows: int = 2,
    extra_observers: Tuple = (),
    local_scheduler_factory=None,
) -> ChannelDataset:
    """Spec-native twin of :func:`collect_dataset`.

    ``spec`` carries everything that identifies the run — system, policy,
    seed, channel script, quantum, faults, donation rule — while the
    arguments here are the *observation* parameters, which never affect the
    schedule. ``spec.channel`` is required; when ``spec.horizon`` is unset,
    the horizon is derived from the script geometry exactly as
    :func:`collect_dataset` derives it.

    This is what campaign cells call: the cell ships one serialized
    ``RunSpec`` (its cache identity) plus a handful of harvest parameters,
    and this function is the only place that turns the pair into arrays.
    """
    script = spec.channel_script()
    if script is None:
        raise ValueError("collect_dataset_from_spec needs a spec with a channel")
    response_recorder = ResponseTimeRecorder([receiver_task])
    vector_recorder = ExecutionVectorRecorder(
        receiver_partition, script.window, m=m_micro, start=script.start
    )
    simulator = Simulator.from_spec(
        spec,
        observers=[response_recorder, vector_recorder, *extra_observers],
        local_scheduler_factory=local_scheduler_factory,
    )
    horizon = spec.horizon
    if horizon is None:
        horizon = script.start + (n_windows + settle_windows) * script.window
    simulator.run_until(horizon)
    return _harvest(
        script, n_windows, receiver_task, response_recorder, vector_recorder
    )


def _harvest(
    script: ChannelScript,
    n_windows: int,
    receiver_task: str,
    response_recorder: ResponseTimeRecorder,
    vector_recorder: ExecutionVectorRecorder,
) -> ChannelDataset:
    """Turn raw recorder state into an aligned :class:`ChannelDataset`."""
    # Response time per window, keyed by the job's arrival window.
    per_window: Dict[int, int] = {}
    for record in response_recorder.records.get(receiver_task, []):
        index = script.window_index(record.arrival)
        if 0 <= index < n_windows and index not in per_window:
            per_window[index] = record.response_time

    # Keep the maximal complete prefix so labels/vectors stay aligned.
    usable = 0
    while usable < n_windows and usable in per_window:
        usable += 1
    if usable == 0:
        raise RuntimeError(
            "no receiver measurements completed; check the channel configuration"
        )

    labels = np.array([script.bit_of_window(i) for i in range(usable)], dtype=np.int64)
    responses = np.array([per_window[i] for i in range(usable)], dtype=np.int64)
    vectors = vector_recorder.matrix(usable)
    return ChannelDataset(
        labels=labels,
        response_times=responses,
        vectors=vectors,
        profile_windows=min(script.profile_windows, usable),
        window=script.window,
    )
