"""The covert timing channel between partitions (Sec. III).

Pipeline:

1. :mod:`repro.channel.dataset` runs a simulation with a
   :class:`~repro.sim.behaviors.ChannelScript` and harvests one labeled
   observation per monitoring window — the receiver's response time and its
   execution vector.
2. :mod:`repro.channel.profiling` implements the profiling phase: the
   odd/even split of alternating-bit measurements into the empirical models
   :math:`\\Pr(R|X=0)` and :math:`\\Pr(R|X=1)`.
3. :mod:`repro.channel.bayes` decodes new observations by Bayesian inference
   over those models (Sec. III-c).
4. The learning-based decoder (Sec. III-d) is any :mod:`repro.ml` classifier
   over execution vectors; :mod:`repro.channel.attack` wires both decoders
   into end-to-end accuracy experiments.
5. :mod:`repro.channel.capacity` estimates the channel capacity
   :math:`C = H(X) - H(X|R)` (Eq. 6) from samples, plus a Blahut-Arimoto
   solver for the true capacity of the estimated conditional distributions.
"""

from repro.channel.attack import AttackResult, ChannelExperiment, evaluate_attacks
from repro.channel.bayes import BayesianDecoder
from repro.channel.capacity import (
    blahut_arimoto,
    channel_capacity_from_samples,
    conditional_entropy,
    entropy,
)
from repro.channel.dataset import ChannelDataset, collect_dataset
from repro.channel.multilevel import (
    MultiLevelBayesianDecoder,
    MultiLevelSenderBehavior,
    SymbolScript,
    collect_multilevel,
    evaluate_multilevel,
)
from repro.channel.profiling import ResponseTimeProfile, profile_odd_even

__all__ = [
    "ChannelDataset",
    "collect_dataset",
    "ResponseTimeProfile",
    "profile_odd_even",
    "BayesianDecoder",
    "entropy",
    "conditional_entropy",
    "channel_capacity_from_samples",
    "blahut_arimoto",
    "ChannelExperiment",
    "AttackResult",
    "evaluate_attacks",
    "SymbolScript",
    "MultiLevelSenderBehavior",
    "MultiLevelBayesianDecoder",
    "collect_multilevel",
    "evaluate_multilevel",
]
