"""Attacker-side error correction over the covert channel.

Sec. V-C: with TimeDice "communication over covert timing channel is still
possible but at a slow rate. Hence, TIMEDICE is useful when the value of
information leaked through a channel is transient." This module quantifies
the "slow rate": a determined attacker can wrap the noisy channel in an
error-correcting code — at a proportional cost in windows per payload bit.

Two classic codes, implemented over the raw decoded bit stream:

- **Repetition-n**: each payload bit sent n times, majority-decoded. Under a
  binary symmetric channel with bit error p, residual error is
  :math:`\\sum_{k>n/2} \\binom{n}{k} p^k (1-p)^{n-k}`; rate 1/n.
- **Hamming(7,4)**: four payload bits per seven channel bits, corrects any
  single error per block; rate 4/7.

:func:`effective_goodput` combines measured channel accuracy with a coding
scheme to yield *reliable payload bits per monitoring window* — the number
that decides whether a transient secret escapes in time.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import comb

import numpy as np

#: Generator matrix of Hamming(7,4) (systematic form), bits over GF(2).
_HAMMING_G = np.array(
    [
        [1, 0, 0, 0, 1, 1, 0],
        [0, 1, 0, 0, 1, 0, 1],
        [0, 0, 1, 0, 0, 1, 1],
        [0, 0, 0, 1, 1, 1, 1],
    ],
    dtype=np.int64,
)
#: Parity-check matrix of Hamming(7,4).
_HAMMING_H = np.array(
    [
        [1, 1, 0, 1, 1, 0, 0],
        [1, 0, 1, 1, 0, 1, 0],
        [0, 1, 1, 1, 0, 0, 1],
    ],
    dtype=np.int64,
)


def _validate_bits(bits: np.ndarray) -> np.ndarray:
    bits = np.asarray(bits).ravel().astype(np.int64)
    if bits.size and not set(np.unique(bits)) <= {0, 1}:
        raise ValueError("bits must be 0/1")
    return bits


# ------------------------------------------------------------- repetition

def repetition_encode(bits: np.ndarray, n: int) -> np.ndarray:
    """Each bit repeated ``n`` times (``n`` odd for unambiguous majority)."""
    if n < 1 or n % 2 == 0:
        raise ValueError("repetition factor must be a positive odd number")
    return np.repeat(_validate_bits(bits), n)


def repetition_decode(coded: np.ndarray, n: int) -> np.ndarray:
    """Majority vote per block of ``n``; trailing partial blocks dropped."""
    if n < 1 or n % 2 == 0:
        raise ValueError("repetition factor must be a positive odd number")
    coded = _validate_bits(coded)
    usable = (coded.size // n) * n
    blocks = coded[:usable].reshape(-1, n)
    return (blocks.sum(axis=1) * 2 > n).astype(np.int64)


def repetition_residual_error(p: float, n: int) -> float:
    """Post-decoding bit error for a BSC with raw error ``p``."""
    if not 0.0 <= p <= 1.0:
        raise ValueError("p must be a probability")
    if n < 1 or n % 2 == 0:
        raise ValueError("repetition factor must be a positive odd number")
    return float(
        sum(comb(n, k) * p**k * (1 - p) ** (n - k) for k in range(n // 2 + 1, n + 1))
    )


# ---------------------------------------------------------------- hamming

def hamming_encode(bits: np.ndarray) -> np.ndarray:
    """Hamming(7,4) encode; payload padded with zeros to a multiple of 4."""
    bits = _validate_bits(bits)
    pad = (-bits.size) % 4
    if pad:
        bits = np.concatenate([bits, np.zeros(pad, dtype=np.int64)])
    nibbles = bits.reshape(-1, 4)
    return (nibbles @ _HAMMING_G % 2).ravel()


def hamming_decode(coded: np.ndarray) -> np.ndarray:
    """Syndrome-decode blocks of 7; corrects one error per block."""
    coded = _validate_bits(coded)
    usable = (coded.size // 7) * 7
    blocks = coded[:usable].reshape(-1, 7).copy()
    syndromes = blocks @ _HAMMING_H.T % 2
    # Map each nonzero syndrome to the column of H it matches.
    columns = _HAMMING_H.T  # row i = syndrome of an error in position i
    for row in range(blocks.shape[0]):
        syndrome = syndromes[row]
        if syndrome.any():
            matches = np.nonzero((columns == syndrome).all(axis=1))[0]
            if matches.size:
                blocks[row, matches[0]] ^= 1
    return blocks[:, :4].ravel()


# ---------------------------------------------------------------- goodput

@dataclass(frozen=True)
class CodedChannel:
    """Reliability/rate summary of one code over a measured channel."""

    scheme: str
    code_rate: float
    raw_bit_error: float
    residual_bit_error: float
    goodput_bits_per_window: float


def effective_goodput(channel_accuracy: float, scheme: str = "none") -> CodedChannel:
    """Reliable payload bits per monitoring window for a coding scheme.

    ``channel_accuracy`` is the measured per-window decoding accuracy (one
    channel bit per window). Supported schemes: ``"none"``, ``"rep3"``,
    ``"rep5"``, ``"rep9"``, ``"hamming74"``.
    """
    if not 0.0 <= channel_accuracy <= 1.0:
        raise ValueError("accuracy must be a probability")
    p = 1.0 - channel_accuracy
    if scheme == "none":
        residual, rate = p, 1.0
    elif scheme.startswith("rep"):
        n = int(scheme[3:])
        residual, rate = repetition_residual_error(p, n), 1.0 / n
    elif scheme == "hamming74":
        # Block fails when >= 2 of 7 bits flip; approximate residual payload
        # error as the two-or-more-error block probability.
        block_fail = float(
            sum(comb(7, k) * p**k * (1 - p) ** (7 - k) for k in range(2, 8))
        )
        residual, rate = block_fail, 4.0 / 7.0
    else:
        raise ValueError(f"unknown coding scheme {scheme!r}")
    goodput = rate * (1.0 - residual)
    return CodedChannel(
        scheme=scheme,
        code_rate=rate,
        raw_bit_error=p,
        residual_bit_error=residual,
        goodput_bits_per_window=goodput,
    )
