"""BLINDER-style partition-oblivious local scheduling (Yoon et al. [11]).

BLINDER makes each partition's *local schedule* — in particular the order in
which local jobs run — deterministic regardless of when the partition
actually receives the CPU. Its core device is **lazy release**: a newly
arrived job is enqueued not at its physical arrival time ``a`` but at
``a + D(t)``, where ``D(t)`` is the delay the partition has accumulated in
the current server period — time during which it had released work pending
but was not executing (preemption by other partitions, budget exhaustion).
On the partition's idealized dedicated processor no such delay exists, so
shifting every release by exactly the experienced delay restores the
dedicated-processor *order* of local events:

- In the Fig. 18 scenario, a long preemption of length ``w`` delays
  :math:`\\tau_{R,1}`'s progress by ``w`` but also pushes
  :math:`\\tau_{R,2}`'s local release back by the same ``w`` — their relative
  order can no longer encode the sender's signal.
- A partition that experiences no delay (or whose arrivals are aligned with
  its replenishments, like the feasibility channel's sender and receiver
  tasks) is completely untouched — which is why BLINDER does **not** stop
  the budget-modulation channel of this paper: physical response times
  remain observable (Sec. V-C).

Delay accounting is per server period (reset at each replenishment, with any
still-deferred jobs released then), bounding deferral by one period.

Release points are checked whenever the engine consults the partition (every
scheduling decision), so a release can materialize slightly after its exact
instant — between two scheduling events nothing can start executing anyway,
so local order, the protected property, is unaffected.

BLINDER is a *local* transformation: select it with
``RunSpec(scheduler="blinder")`` (importing this module registers the name),
or plug :func:`blinder_factory` into the simulator's
``local_scheduler_factory`` while keeping any global policy.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.model.partition import Partition
from repro.sim.local import Job, LocalScheduler
from repro.sim.registry import register_local_scheduler


class BlinderLocalScheduler(LocalScheduler):
    """Lag-based lazy release + fixed-priority scheduling within a partition."""

    def __init__(self, spec: Partition):
        self.spec = spec
        #: Delay experienced in the current server period (µs).
        self.delay = 0
        self._period_service = 0
        self._last_t = 0
        self._service_at_last = 0
        self._had_ready = False
        self._pending: List[Tuple[int, Job]] = []  # (release time, job)
        self._ready: List[Job] = []

    # ------------------------------------------------------------- internals

    def _advance(self, t: int) -> None:
        """Update the delay account up to time ``t`` and release due jobs."""
        gap = t - self._last_t
        if gap > 0:
            served = self._period_service - self._service_at_last
            if self._had_ready:
                self.delay += max(0, gap - served)
            self._last_t = t
            self._service_at_last = self._period_service
        self._release_due(t)
        self._had_ready = bool(self._ready)

    def _release_due(self, t: int) -> None:
        due = [entry for entry in self._pending if entry[1].arrival + self.delay <= t]
        if not due:
            return
        for entry in due:
            self._pending.remove(entry)
            self._ready.append(entry[1])
        self._sort_ready()

    def _sort_ready(self) -> None:
        self._ready.sort(key=lambda j: (j.task.local_priority, j.arrival, j.job_id))

    # ------------------------------------------------------------- interface

    def on_replenish(self, t: int) -> None:
        """New server period: flush deferred jobs, reset the delay account."""
        self._advance(t)
        for _, job in self._pending:
            self._ready.append(job)
        self._pending.clear()
        self._sort_ready()
        self.delay = 0
        self._had_ready = bool(self._ready)

    def on_arrival(self, job: Job, t: int) -> None:
        self._advance(t)
        if self.delay > 0:
            # The partition has been held back; a dedicated processor would
            # see this arrival correspondingly later.
            self._pending.append((job.arrival + self.delay, job))
        else:
            self._ready.append(job)
            self._sort_ready()
        self._had_ready = bool(self._ready)

    def on_complete(self, job: Job, t: int) -> None:
        if job in self._ready:
            self._ready.remove(job)
        self._had_ready = bool(self._ready)

    def on_executed(self, job: Job, duration: int, t: int) -> None:
        self._period_service += duration
        self._advance(t)

    def pick(self, t: int) -> Optional[Job]:
        self._advance(t)
        return self._ready[0] if self._ready else None

    def has_ready(self, t: int) -> bool:
        return self.pick(t) is not None

    def pending_count(self) -> int:
        return len(self._ready) + len(self._pending)


def blinder_factory(spec: Partition) -> BlinderLocalScheduler:
    """``local_scheduler_factory`` adapter for the simulator."""
    return BlinderLocalScheduler(spec)


def _blinder_registry_factory(
    partition: Partition, seed: Optional[int]
) -> BlinderLocalScheduler:
    return BlinderLocalScheduler(partition)


register_local_scheduler("blinder", _blinder_registry_factory)
