"""Baseline defenses the paper compares against (Sec. III-h, Sec. V-C).

- :mod:`repro.baselines.blinder` — BLINDER's partition-oblivious local
  scheduling: job releases are driven by partition-virtual time (budget
  consumed) rather than physical time, which fixes the *order* of local
  executions regardless of global interference. It defeats the task-order
  channel of Fig. 18 but not this paper's response-time channel (physical
  time stays observable).
- Static TDMA lives in :class:`repro.sim.policies.TDMAPolicy`: it removes
  the channel entirely (no two partitions are active in the same slot) at
  the utilization cost the paper discusses.
"""

from repro.baselines.blinder import BlinderLocalScheduler, blinder_factory

__all__ = ["BlinderLocalScheduler", "blinder_factory"]
