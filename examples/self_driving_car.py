#!/usr/bin/env python3
"""The motivating scenario (Sec. III-e): leaking a vehicle's location.

The simulated 1/10th-scale car runs four partitions over a pub-sub bus.
Every authorized message is logged and auditable — and the precise location
never appears on the bus. Yet an ill-intentioned operator reconstructs the
vehicle's trajectory at the logging partition purely from scheduling
timing. With TimeDice enabled, the reconstruction collapses.

Run:  python examples/self_driving_car.py
"""

import numpy as np

from repro.car import CarPlatform


def trajectory_error(truth, recovered) -> float:
    """Mean Euclidean error (course units) over the reconstructed fixes."""
    n = min(len(truth), len(recovered))
    if n == 0:
        return float("nan")
    diffs = [
        ((tx - rx) ** 2 + (ty - ry) ** 2) ** 0.5
        for (tx, ty), (rx, ry) in zip(truth[:n], recovered[:n])
    ]
    return float(np.mean(diffs))


def main() -> None:
    course = [(0.5 * i % 6, (0.25 * i) % 4) for i in range(24)]
    platform = CarPlatform(
        secret_location=course, profile_windows=150, message_windows=len(course) * 8
    )

    for policy in ("norandom", "timedice"):
        result = platform.run_channel(policy, seed=5)
        recovered = CarPlatform.bits_to_locations(result.recovered_bits)
        truth = CarPlatform.bits_to_locations(result.true_bits)
        print(f"\n=== {policy} ===")
        print(f"  authorized bus topics: {result.bus_topics}")
        print(f"  location on the bus:   {result.location_on_bus}")
        print(
            f"  covert bit accuracy:   RT {100 * result.accuracy_response_time:.1f}%  "
            f"EV {100 * result.accuracy_execution_vector:.1f}%"
        )
        print(f"  trajectory fixes reconstructed: {len(recovered)}")
        print(f"  mean position error:   {trajectory_error(truth, recovered):.2f} units")
        for i in range(min(4, len(recovered))):
            print(f"    fix {i}: true={truth[i]}  recovered={recovered[i]}")

    print("\nTable III responsiveness (30 simulated seconds each):")
    for policy in ("norandom", "timedice"):
        stats = platform.responsiveness(policy, seconds=30.0, seed=5)
        for task, summary in stats.items():
            print(
                f"  {policy:9s} {task:22s} avg={summary['avg']:6.2f} ms  "
                f"std={summary['std']:5.2f}  max={summary['max']:6.2f}"
            )


if __name__ == "__main__":
    main()
