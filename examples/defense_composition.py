#!/usr/bin/env python3
"""Composing the defenses: TimeDice (global) + BLINDER (local).

Runs the full 2x2 defense matrix against both covert-channel families —
this paper's budget-modulation channel and BLINDER's task-order channel —
and renders the key figures as SVG files under ./figures/.

Also demonstrates the attacker's last resort: error-correcting codes over
the TimeDice-randomized channel, and why they do not help.

Run:  python examples/defense_composition.py
"""

from pathlib import Path

from repro._time import ms
from repro.experiments import coding_study, defense_matrix
from repro.experiments.render import gantt_svg
from repro.model.configs import three_partition_example
from repro.sim import SegmentRecorder, Simulator


def main() -> None:
    print("Running the defense-composition matrix (light load)...\n")
    matrix = defense_matrix.run(
        profile_windows=80, message_windows=150, order_windows=150, seed=5
    )
    print(matrix.format())
    print()
    for global_name in ("NoRandom", "TimeDice"):
        for local_name in ("FP", "BLINDER"):
            verdict = "defends everything" if matrix.defended(global_name, local_name) else "leaves a channel open"
            print(f"  {global_name:9s} + {local_name:8s}: {verdict}")

    print("\nCan coding rescue the attacker under TimeDice?")
    coding = coding_study.run(payload_bits=32, profile_windows=80, seed=3)
    print(coding.format())

    out = Path("figures")
    out.mkdir(exist_ok=True)
    system = three_partition_example()
    for policy in ("norandom", "timedice"):
        recorder = SegmentRecorder()
        Simulator(system, policy=policy, seed=5, observers=[recorder]).run_for_ms(300)
        path = out / f"defense_demo_{policy}.svg"
        gantt_svg(
            recorder.segments,
            [p.name for p in system],
            ms(300),
            title=f"Schedule under {policy}",
            path=path,
        )
        print(f"\nwrote {path}")


if __name__ == "__main__":
    main()
