#!/usr/bin/env python3
"""Quickstart: build a partitioned system, schedule it, randomize it.

Walks through the core public API in five minutes:

1. define partitions and tasks (integer microseconds via `ms()`),
2. check partition- and task-level schedulability offline,
3. simulate under the plain fixed-priority scheduler (NoRandom),
4. switch on TimeDice and watch the schedule de-correlate while every
   partition still receives its full budget each period,
5. inspect traces and per-task response times.

Run:  python examples/quickstart.py
"""

from repro import ms, to_ms
from repro.analysis import system_schedulability_report, wcrt_table
from repro.metrics.locality import slot_entropy
from repro.model import Partition, System, Task
from repro.sim import (
    BudgetAccountant,
    ResponseTimeRecorder,
    SegmentRecorder,
    Simulator,
)


def build_system() -> System:
    """Three partitions, rate-monotonic global priorities."""
    control = Partition(
        name="control",
        period=ms(20),
        budget=ms(6),
        priority=1,
        tasks=[
            Task(name="sense", period=ms(20), wcet=ms(2), local_priority=0),
            Task(name="actuate", period=ms(40), wcet=ms(4), local_priority=1),
        ],
    )
    vision = Partition(
        name="vision",
        period=ms(30),
        budget=ms(9),
        priority=2,
        tasks=[Task(name="detect", period=ms(60), wcet=ms(12), local_priority=0)],
    )
    logging = Partition(
        name="logging",
        period=ms(50),
        budget=ms(10),
        priority=3,
        tasks=[Task(name="flush", period=ms(100), wcet=ms(15), local_priority=0)],
    )
    return System([control, vision, logging])


def main() -> None:
    system = build_system()
    print(f"System: {system}")

    # ---- 1. offline analysis -------------------------------------------
    report = system_schedulability_report(system)
    print("\nPartition-level schedulability (Definition 1):")
    for name, ok in report.partition_ok.items():
        response = report.partition_budget_response_ms[name]
        print(f"  {name:8s} guaranteed budget: {ok} (worst supply {response} ms)")

    print("\nTask WCRTs (ms), NoRandom vs TimeDice:")
    for row in wcrt_table(system):
        print(
            f"  {row.task:8s} deadline={row.deadline_ms:7.1f}  "
            f"NR={row.norandom_ms:7.1f}  TD={row.timedice_ms:7.1f}  "
            f"schedulable under TimeDice: {row.schedulable_timedice}"
        )

    # ---- 2. simulate under both schedulers -----------------------------
    for policy in ("norandom", "timedice"):
        accountant = BudgetAccountant({p.name: p.period for p in system})
        responses = ResponseTimeRecorder()
        trace = SegmentRecorder(merge=False, limit=500_000)
        sim = Simulator(
            system, policy=policy, seed=1, observers=[accountant, responses, trace]
        )
        result = sim.run_for_seconds(3.0)

        entropy = slot_entropy(
            trace.segments, ms(1), system.hyperperiod, result.end_time,
            [p.name for p in system],
        )
        print(f"\n=== {policy} ===")
        print(
            f"  decisions/s={result.rates()['decisions_per_sec']:7.1f}  "
            f"switches/s={result.rates()['switches_per_sec']:7.1f}  "
            f"slot entropy={entropy:.3f} bits  deadline misses={result.deadline_misses}"
        )
        for p in system:
            served = min(
                accountant.served_in_period(p.name, k)
                for k in range(3_000_000 // p.period - 1)
            )
            print(f"  {p.name:8s} min budget served per period: {to_ms(served):5.1f} ms "
                  f"(budget {to_ms(p.budget)} ms)")
        for task in ("sense", "detect", "flush"):
            summary = responses.summary(task)
            print(
                f"  {task:8s} response avg={summary['avg']:6.2f} ms  "
                f"max={summary['max']:6.2f} ms over {summary['count']} jobs"
            )


if __name__ == "__main__":
    main()
