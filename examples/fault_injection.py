#!/usr/bin/env python3
"""Fault injection: stress the schedulability guarantees beyond the model.

Every analysis in the repo assumes nominal behaviour — honest WCETs, exact
sporadic releases, partitions that only burn budget to make progress. The
:mod:`repro.faults` subsystem deliberately breaks those assumptions, one
seeded stream at a time, so you can ask: *when partition X misbehaves, do
the other partitions still make their deadlines?*

This walkthrough:

1. declares a fault plan (WCET overruns + crashes against one partition),
2. shows the determinism contract: a zero-intensity plan is bit-identical
   to no plan at all,
3. runs faulted simulations under NoRandom and TimeDice,
4. attributes every deadline miss to the faulty vs. clean partitions with
   :class:`repro.faults.GuaranteeChecker`.

Run:  python examples/fault_injection.py
"""

from repro.faults import FaultPlan, FaultSpec, GuaranteeChecker
from repro.model.configs import three_partition_example
from repro.sim import Simulator


def main() -> None:
    system = three_partition_example()
    names = [p.name for p in system]
    print(f"system: {', '.join(names)} (priority order)")

    # -- 1. a fault plan: Pi_2's jobs overrun 3x half the time, and its
    #       partition occasionally crashes for two replenishment periods.
    target = "Pi_2"
    plan = FaultPlan.of(
        FaultSpec("overrun", target, rate=0.5, magnitude=3.0),
        FaultSpec("crash", target, rate=0.1, length=2),
    )
    print(f"\nfault plan (hash {plan.content_hash()[:12]}):")
    for spec in plan:
        print(
            f"  {spec.kind:8s} -> {spec.partition}  "
            f"rate={spec.rate} magnitude={spec.magnitude} length={spec.length}"
        )

    # -- 2. determinism: zero intensity == no plan, bit for bit. The fault
    #       streams draw from RNGs derived independently of the workload and
    #       policy streams, and null specs are dropped at construction.
    null_plan = FaultPlan.of(FaultSpec("overrun", target, rate=0.0, magnitude=3.0))
    bare = Simulator(system, policy="timedice", seed=11).run_for_ms(300)
    nulled = Simulator(
        system, policy="timedice", seed=11, faults=null_plan
    ).run_for_ms(300)
    assert (bare.decisions, bare.switches, bare.deadline_misses) == (
        nulled.decisions,
        nulled.switches,
        nulled.deadline_misses,
    )
    print(
        f"\nzero-intensity plan is inert: {bare.decisions} decisions, "
        f"{bare.switches} switches, {bare.deadline_misses} misses — identical"
    )

    # -- 3 & 4. faulted runs + guarantee attribution. A miss inside the
    #       faulted partition is expected degradation; a miss anywhere else
    #       would mean the budget isolation leaked (or a bug).
    print(f"\nfaulted runs ({target} misbehaving):")
    for policy in ("norandom", "timedice"):
        checker = GuaranteeChecker(system, plan)
        result = Simulator(
            system, policy=policy, seed=11, faults=plan, observers=[checker]
        ).run_for_ms(300)
        report = checker.report()
        assert report["attributed"], "every miss must be attributed"
        print(
            f"  {policy:9s} injected={result.fault_injections:3d}  "
            f"faulty-partition misses={report['faulty_misses']:3d}  "
            f"clean-partition misses={report['clean_misses']} "
            f"(clean miss rate {report['clean_miss_rate'] * 100:.2f}%)"
        )

    print(
        "\nnext: the full sweep over kinds x intensities x policies —\n"
        "  python -m repro campaign robustness-sweep --quick\n"
        "or inject into any experiment ambiently, e.g.\n"
        "  python -m repro fig6 --faults 'overrun:Pi_2:rate=0.5,mag=3'"
    )


if __name__ == "__main__":
    main()
