#!/usr/bin/env python3
"""The full covert-channel attack, end to end (Sec. III of the paper).

A sender partition (Π₂) leaks a secret message to a receiver partition (Π₄)
with which it shares *no* communication channel — only the CPU, behind a
budget-enforcing hierarchical scheduler. The script runs the complete
adversary pipeline:

1. profiling phase: alternating bits, receiver builds Pr(R|X=0)/Pr(R|X=1),
2. communication phase: the sender transmits an ASCII message one bit per
   150 ms monitoring window,
3. decoding: Bayesian inference on response times, plus the stronger
   learning-based decoder (RBF-kernel LS-SVM on execution vectors),
4. the same attack with TimeDice enabled — the message drowns.

Run:  python examples/covert_channel_attack.py
"""

import numpy as np

from repro.channel.bayes import BayesianDecoder
from repro.channel.dataset import collect_dataset
from repro.ml.svm import LSSVMClassifier
from repro.model.configs import feasibility_system
from repro.sim.behaviors import ChannelScript, default_sender_phases

SECRET = "DICE"
PROFILE_WINDOWS = 200


def text_to_bits(text: str) -> list:
    return [(byte >> shift) & 1 for byte in text.encode() for shift in range(7, -1, -1)]


def bits_to_text(bits: np.ndarray) -> str:
    chars = []
    for base in range(0, len(bits) - 7, 8):
        value = 0
        for bit in bits[base : base + 8]:
            value = (value << 1) | int(bit)
        chars.append(chr(value) if 32 <= value < 127 else "?")
    return "".join(chars)


def main() -> None:
    system = feasibility_system()
    message_bits = text_to_bits(SECRET)
    window = 3 * system.by_name("Pi_4").period
    script = ChannelScript(
        window=window,
        profile_windows=PROFILE_WINDOWS,
        message_bits=message_bits,
        sender_phases=default_sender_phases(
            window, system.by_name("Pi_2").period, system.by_name("Pi_4").period
        ),
    )

    for policy in ("norandom", "timedice"):
        dataset = collect_dataset(
            system,
            policy,
            script,
            n_windows=PROFILE_WINDOWS + len(message_bits),
            receiver_partition="Pi_4",
            receiver_task="receiver_4",
            seed=3,
        )
        profiling = dataset.profiling_part()
        communication = dataset.message_part()

        # Response-time (Bayes) decoding.
        decoder = BayesianDecoder().fit(profiling.response_times)
        bayes_bits = decoder.predict(communication.response_times)

        # Learning-based decoding (execution vectors + RBF LS-SVM).
        svm = LSSVMClassifier(c=10.0).fit(
            profiling.vectors.astype(float), profiling.labels
        )
        svm_bits = svm.predict(communication.vectors.astype(float))

        truth = communication.labels
        print(f"\n=== {policy} ===")
        print(f"  secret message:         {SECRET!r}")
        print(
            f"  Bayes / response-time:  {bits_to_text(bayes_bits)!r} "
            f"({100 * np.mean(bayes_bits == truth):.1f}% bit accuracy)"
        )
        print(
            f"  SVM / execution-vector: {bits_to_text(svm_bits)!r} "
            f"({100 * np.mean(svm_bits == truth):.1f}% bit accuracy)"
        )


if __name__ == "__main__":
    main()
