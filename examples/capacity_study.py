#!/usr/bin/env python3
"""An information-theoretic study of the channel (Fig. 15 and beyond).

Measures the covert channel's capacity (bits per monitoring window) across
scheduling policies, system loads, and — as an extension the paper hints at
("the randomization happens approximately every 1 ms") — the TimeDice
quantum size. Finer quanta randomize more and squeeze the channel harder,
at a higher scheduling-overhead price.

Run:  python examples/capacity_study.py
"""

import numpy as np

from repro import ms
from repro.channel.capacity import (
    blahut_arimoto,
    channel_capacity_from_samples,
    joint_from_samples,
)
from repro.experiments.configs import LIGHT_ALPHA, feasibility_experiment
from repro.model.configs import DEFAULT_ALPHA

N_SAMPLES = 300


def measure(experiment, policy, quantum=None):
    dataset = experiment.run(policy, seed=3, quantum=quantum)
    mi = channel_capacity_from_samples(dataset.labels, dataset.response_times)
    joint = joint_from_samples(dataset.labels, dataset.response_times)
    conditional = joint / np.maximum(joint.sum(axis=1, keepdims=True), 1e-12)
    capacity, _ = blahut_arimoto(conditional)
    return mi, capacity


def main() -> None:
    print("Channel capacity in bits per 150 ms monitoring window")
    print(f"({N_SAMPLES} uniform message bits per measurement)\n")

    print(f"{'load':6s} {'policy':18s} {'I(X;R)':>8s} {'capacity':>9s}")
    for alpha, load in ((DEFAULT_ALPHA, "base"), (LIGHT_ALPHA, "light")):
        experiment = feasibility_experiment(
            alpha=alpha, profile_windows=0, message_windows=N_SAMPLES
        )
        for policy in ("norandom", "timedice-uniform", "timedice"):
            mi, capacity = measure(experiment, policy)
            print(f"{load:6s} {policy:18s} {mi:8.3f} {capacity:9.3f}")

    print("\nExtension: quantum (MIN_INV_SIZE) sweep under TimeDiceW, base load")
    print(f"{'quantum':>8s} {'I(X;R)':>8s}   (finer quantum -> tighter channel)")
    experiment = feasibility_experiment(
        alpha=DEFAULT_ALPHA, profile_windows=0, message_windows=N_SAMPLES
    )
    for quantum_ms in (0.5, 1, 2, 5):
        mi, _ = measure(experiment, "timedice", quantum=ms(quantum_ms))
        print(f"{quantum_ms:6.1f}ms {mi:8.3f}")

    print("\nInterpretation (Sec. V-B1): at f windows/second the attacker")
    print("moves about C*f bits/s; TimeDice keeps C low enough that fast-")
    print("decaying secrets (vehicle positions, session tokens) expire")
    print("before they can cross.")


if __name__ == "__main__":
    main()
