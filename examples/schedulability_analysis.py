#!/usr/bin/env python3
"""The system designer's workflow: validate a configuration before deploying
TimeDice (Sec. IV-B).

The WCRT analysis for TimeDice is *modular* — it depends only on the task's
own partition parameters — so each partition supplier can verify their tasks
against the randomized scheduler in isolation. This script:

1. runs the full analytic table on the paper's Table I system (and shows
   that every task tolerates the randomization),
2. constructs a configuration that is schedulable under NoRandom but NOT
   under TimeDice — the case the paper warns about ("some tasks may be
   unschedulable ... due to the additional delay"),
3. cross-validates the analysis against simulation: the analytic WCRT is
   never exceeded empirically.

Run:  python examples/schedulability_analysis.py
"""

from repro import ms
from repro.analysis import (
    task_schedulable,
    wcrt_norandom,
    wcrt_table,
    wcrt_timedice,
)
from repro.model import Partition, Task
from repro.model.configs import table1_system
from repro.sim import ResponseTimeRecorder, Simulator


def main() -> None:
    # ---- 1. the paper's benchmark system --------------------------------
    system = table1_system()
    rows = wcrt_table(system)
    print("Table I system: analytic WCRTs (ms)")
    print(f"{'task':9s} {'deadline':>9s} {'NoRandom':>9s} {'TimeDice':>9s}  ok?")
    for row in rows:
        print(
            f"{row.task:9s} {row.deadline_ms:9.1f} {row.norandom_ms:9.1f} "
            f"{row.timedice_ms:9.1f}  {row.schedulable_timedice}"
        )
    assert all(row.schedulable_timedice for row in rows)
    print("=> every Table I task tolerates the randomization.\n")

    # ---- 2. a configuration TimeDice breaks -----------------------------
    tight = Partition(
        name="tight",
        period=ms(20),
        budget=ms(8),
        priority=1,
        tasks=[Task(name="edge", period=ms(25), wcet=ms(7), local_priority=0)],
    )
    nr = wcrt_norandom(tight, tight.tasks[0])
    td = wcrt_timedice(tight, tight.tasks[0])
    print("A deliberately tight task (p=25ms, e=7ms on an 8/20 server):")
    print(f"  NoRandom WCRT = {nr / 1000:.1f} ms  (deadline 25 ms) "
          f"-> schedulable: {task_schedulable(tight, tight.tasks[0], timedice=False)}")
    print(f"  TimeDice WCRT = {td / 1000:.1f} ms  (deadline 25 ms) "
          f"-> schedulable: {task_schedulable(tight, tight.tasks[0], timedice=True)}")
    print("=> TimeDice preserves *partition* budgets, but task-level deadlines")
    print("   must be re-validated with the Sec. IV-B analysis.\n")

    # ---- 3. analysis vs simulation --------------------------------------
    print("Cross-validation: empirical WCRT never exceeds the analytic bound")
    recorder = ResponseTimeRecorder()
    sim = Simulator(system, policy="timedice", seed=9, observers=[recorder])
    sim.run_for_seconds(20)
    violations = 0
    for row in rows:
        observed = recorder.empirical_wcrt(row.task)
        if observed is not None and observed / 1000.0 > row.timedice_ms:
            violations += 1
            print(f"  VIOLATION {row.task}: observed {observed / 1000:.2f} ms")
    print(f"  checked {len(rows)} tasks over 20 simulated seconds: "
          f"{violations} violations")


if __name__ == "__main__":
    main()
